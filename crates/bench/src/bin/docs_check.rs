//! `docs_check` — std-only documentation link checker (CI docs job).
//!
//! Scans the operator-facing documents for
//!
//! 1. relative markdown links — `[text](path)` where `path` has no URL
//!    scheme — resolved against the linking file's directory, and
//! 2. backtick-quoted repo file references — `` `crates/net/src/event.rs` ``
//!    style paths (any `dir/file.ext` token, optionally `:line`-suffixed),
//!    resolved against the repository root,
//!
//! and exits nonzero listing every target that does not exist on disk. A
//! doc that names a source file which was later moved or renamed fails CI
//! instead of silently rotting.
//!
//! ```text
//! cargo run -p coalloc-bench --bin docs_check [-- ROOT]
//! ```

use std::path::{Path, PathBuf};

/// The documents under the checker's contract (repo-relative).
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/PROTOCOL.md",
    "docs/OPERATIONS.md",
];

/// Strip fenced code blocks (``` ... ```): link syntax inside a fence is
/// example text, not navigation. Backtick-path checking keeps the fences —
/// a fenced command line naming a repo file should still be valid.
fn without_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut fenced = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if !fenced {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Every `[text](target)` target in `text`, with its 1-based line number.
fn md_link_targets(text: &str) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("](") {
            rest = &rest[pos + 2..];
            if let Some(end) = rest.find(')') {
                found.push((i + 1, rest[..end].to_string()));
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    found
}

/// Every backtick span in `text` that looks like a repo path: at least one
/// `/`, a file extension, and only path-safe characters. An optional
/// `:line[-line]` suffix (source references) is stripped.
fn backtick_paths(text: &str) -> Vec<(usize, String)> {
    let mut found = Vec::new();
    for (i, line) in text.lines().enumerate() {
        for span in line.split('`').skip(1).step_by(2) {
            let candidate = span
                .split_once(':')
                .map_or(span, |(path, tail)| {
                    // Keep `path:123`-style line refs, not `key: value`.
                    if tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        path
                    } else {
                        span
                    }
                });
            let is_pathish = candidate.contains('/')
                && candidate.rsplit_once('.').is_some_and(|(stem, ext)| {
                    // A real file extension is lowercase with a letter in
                    // it — this keeps protocol version strings
                    // (`coalloc/1.2`, `coalloc/MAJOR.MINOR`) out.
                    !stem.is_empty()
                        && ext.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                        && ext.chars().any(|c| c.is_ascii_lowercase())
                })
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "/._-".contains(c));
            if is_pathish {
                found.push((i + 1, candidate.to_string()));
            }
        }
    }
    found
}

/// A link target is checkable when it is relative: no scheme, no
/// pure-anchor, no absolute path.
fn checkable_link(target: &str) -> Option<&str> {
    if target.is_empty()
        || target.starts_with('#')
        || target.starts_with('/')
        || target.contains("://")
        || target.starts_with("mailto:")
    {
        return None;
    }
    // Drop an in-document anchor suffix: `DESIGN.md#section`.
    Some(target.split('#').next().unwrap_or(target))
}

fn main() {
    let root: PathBuf = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let mut errors: Vec<String> = Vec::new();
    let mut checked = 0usize;

    for doc in DOCS {
        let doc_path = root.join(doc);
        let text = match std::fs::read_to_string(&doc_path) {
            Ok(t) => t,
            Err(e) => {
                errors.push(format!("{doc}: unreadable: {e}"));
                continue;
            }
        };
        let doc_dir = Path::new(doc).parent().unwrap_or(Path::new(""));

        for (line, target) in md_link_targets(&without_fences(&text)) {
            let Some(rel) = checkable_link(&target) else { continue };
            if rel.is_empty() {
                continue; // same-file anchor
            }
            checked += 1;
            if !root.join(doc_dir).join(rel).exists() {
                errors.push(format!("{doc}:{line}: broken link `{target}`"));
            }
        }
        for (line, path) in backtick_paths(&text) {
            checked += 1;
            if !root.join(&path).exists() {
                errors.push(format!("{doc}:{line}: missing file reference `{path}`"));
            }
        }
    }

    if errors.is_empty() {
        println!("docs_check: {checked} references across {} documents, all resolve", DOCS.len());
    } else {
        for e in &errors {
            eprintln!("docs_check: {e}");
        }
        eprintln!("docs_check: {} broken reference(s)", errors.len());
        std::process::exit(1);
    }
}
