//! # coalloc-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 5), plus complexity experiments (Section 4.3) and
//! design ablations. Run with:
//!
//! ```text
//! cargo run -p coalloc-bench --release --bin experiments -- all --scale 0.05
//! ```
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use experiments::{run, ALL_EXPERIMENTS};
pub use harness::{paper_scheduler_config, Csv, ExpConfig};

/// Relative frequency of job durations in 2-hour bins (Figure 4b helper).
pub fn dist_hours(reqs: &[coalloc_core::prelude::Request]) -> Vec<f64> {
    let mut counts = [0u64; 22];
    for r in reqs {
        let bin = ((r.duration.hours() / 2.0) as usize).min(21);
        counts[bin] += 1;
    }
    let total = reqs.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / total).collect()
}
