//! Property tests for workflow scheduling on random DAGs.

use coalloc_core::prelude::*;
use coalloc_workflow::{schedule_reactive, schedule_reserved, Dag, Stage, StageId};
use proptest::prelude::*;

/// Random DAG: edges only from lower to higher index, so always acyclic.
fn dag_strategy() -> impl Strategy<Value = Dag> {
    (
        prop::collection::vec((1i64..40, 1u32..4), 1..10), // stages: (dur, servers)
        prop::collection::vec((0usize..10, 0usize..10), 0..20), // raw edges
    )
        .prop_map(|(stages, edges)| {
            let mut dag = Dag::new();
            let ids: Vec<StageId> = stages
                .iter()
                .enumerate()
                .map(|(i, &(d, n))| dag.add_stage(Stage::new(format!("s{i}"), Dur(d), n)))
                .collect();
            for (a, b) in edges {
                let (a, b) = (a % ids.len(), b % ids.len());
                if a < b {
                    dag.add_dep(ids[a], ids[b]).unwrap();
                }
            }
            dag
        })
}

fn sched(n: u32) -> CoAllocScheduler {
    CoAllocScheduler::new(
        n,
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(4000))
            .delta_t(Dur(10))
            .build(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reserved plans respect every precedence edge, never undercut the
    /// critical path, and leave a consistent scheduler.
    #[test]
    fn reserved_plans_are_valid(dag in dag_strategy()) {
        let mut s = sched(4);
        match schedule_reserved(&mut s, &dag, Time::ZERO, None) {
            Ok(plan) => {
                for i in 0..dag.len() {
                    let sid = StageId(i);
                    prop_assert_eq!(
                        plan.end(sid) - plan.start(sid),
                        dag.stage(sid).duration
                    );
                    for &dep in dag.deps(sid) {
                        prop_assert!(plan.start(sid) >= plan.end(dep));
                    }
                }
                let cp = dag.critical_path().unwrap();
                prop_assert!(plan.makespan_end - Time::ZERO >= cp);
            }
            Err(_) => {
                // Failure must roll back completely: all servers fully idle.
                prop_assert_eq!(s.range_search(Time::ZERO, Time(1000)).len(), 4);
            }
        }
        s.check_consistency();
    }

    /// Reserved and reactive are both greedy heuristics with different
    /// visit orders, so makespans may differ — but on an empty system both
    /// must succeed/fail together and both respect the critical-path lower
    /// bound.
    #[test]
    fn both_modes_valid_without_contention(dag in dag_strategy()) {
        let mut a = sched(4);
        let mut b = sched(4);
        let cp = dag.critical_path().unwrap();
        let ra = schedule_reserved(&mut a, &dag, Time::ZERO, None);
        let rb = schedule_reactive(&mut b, &dag, Time::ZERO);
        match (ra, rb) {
            (Ok(x), Ok(y)) => {
                prop_assert!(x.makespan_end - Time::ZERO >= cp);
                prop_assert!(y.makespan_end - Time::ZERO >= cp);
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "mode divergence: {x:?} vs {y:?}"),
        }
        a.check_consistency();
        b.check_consistency();
    }

    /// On a pure chain both modes visit stages in the same order, so the
    /// makespans coincide exactly.
    #[test]
    fn chain_makespans_coincide(
        durs in prop::collection::vec((1i64..40, 1u32..4), 1..8),
    ) {
        let mut dag = Dag::new();
        let mut prev: Option<StageId> = None;
        for (i, &(d, n)) in durs.iter().enumerate() {
            let id = dag.add_stage(Stage::new(format!("c{i}"), Dur(d), n));
            if let Some(p) = prev {
                dag.add_dep(p, id).unwrap();
            }
            prev = Some(id);
        }
        let mut a = sched(4);
        let mut b = sched(4);
        let x = schedule_reserved(&mut a, &dag, Time::ZERO, None).unwrap();
        let y = schedule_reactive(&mut b, &dag, Time::ZERO).unwrap();
        prop_assert_eq!(x.makespan_end, y.makespan_end);
        prop_assert_eq!(x.makespan_end - Time::ZERO, dag.critical_path().unwrap());
    }

    /// A deadline at exactly the reserved makespan succeeds; one strictly
    /// inside the critical path always fails and rolls back.
    #[test]
    fn deadline_boundary(dag in dag_strategy()) {
        let mut probe = sched(4);
        let Ok(plan) = schedule_reserved(&mut probe, &dag, Time::ZERO, None) else {
            return Ok(());
        };
        let mut s = sched(4);
        prop_assert!(
            schedule_reserved(&mut s, &dag, Time::ZERO, Some(plan.makespan_end)).is_ok()
        );
        let cp = dag.critical_path().unwrap();
        if cp.secs() > 1 {
            let mut s2 = sched(4);
            let too_tight = Time::ZERO + cp - Dur(1);
            prop_assert!(
                schedule_reserved(&mut s2, &dag, Time::ZERO, Some(too_tight)).is_err()
            );
            prop_assert_eq!(s2.range_search(Time::ZERO, Time(1000)).len(), 4);
        }
    }
}
