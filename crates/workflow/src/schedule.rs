//! Scheduling a workflow DAG onto the co-allocation scheduler.
//!
//! Two modes mirror the paper's argument for advance reservations:
//!
//! * **Reserved** — the whole DAG is planned at submission time as a chain
//!   of advance reservations (each stage starts no earlier than its latest
//!   dependency's committed end). The user gets a *guaranteed* timetable;
//!   competing load arriving later cannot displace it. If any stage cannot
//!   be placed, every already-committed stage is rolled back, so the
//!   operation is atomic. This is the capability batch schedulers lack —
//!   "advance reservations [...] also enable support for workflow
//!   applications" (Section 1).
//! * **Reactive** — each stage is submitted only when its dependencies have
//!   completed (clock advanced to that moment), the way a dependency-driven
//!   engine over a batch queue behaves. No guarantees: capacity may have
//!   been taken in the meantime.

use crate::dag::{Dag, DagError, StageId};
use coalloc_core::error::ScheduleError;
use coalloc_core::prelude::*;
use coalloc_core::scheduler::CoAllocScheduler;

/// How the DAG is mapped onto reservations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mode {
    /// Plan everything now via chained advance reservations (atomic).
    #[default]
    Reserved,
    /// Submit each stage when its dependencies complete.
    Reactive,
}

/// The committed plan of one workflow.
#[derive(Clone, Debug)]
pub struct WorkflowPlan {
    /// Per-stage grants, indexed like the DAG's stages.
    pub grants: Vec<Grant>,
    /// Completion time of the last stage.
    pub makespan_end: Time,
    /// Total scheduling attempts across stages.
    pub attempts: u32,
}

impl WorkflowPlan {
    /// Start time of a stage.
    pub fn start(&self, s: StageId) -> Time {
        self.grants[s.0].start
    }

    /// End time of a stage.
    pub fn end(&self, s: StageId) -> Time {
        self.grants[s.0].end
    }
}

/// Why workflow scheduling failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkflowError {
    /// The DAG is malformed.
    Dag(DagError),
    /// A stage could not be placed (everything already placed was rolled
    /// back).
    StageFailed {
        /// The failing stage.
        stage: StageId,
        /// The underlying scheduler error.
        cause: ScheduleError,
    },
    /// The workflow cannot complete by the requested deadline (rolled back).
    DeadlineMiss {
        /// The stage whose placement broke the deadline.
        stage: StageId,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Dag(e) => write!(f, "invalid workflow: {e}"),
            WorkflowError::StageFailed { stage, cause } => {
                write!(f, "stage #{} unplaceable: {cause}", stage.0)
            }
            WorkflowError::DeadlineMiss { stage } => {
                write!(f, "deadline missed at stage #{}", stage.0)
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl From<DagError> for WorkflowError {
    fn from(e: DagError) -> Self {
        WorkflowError::Dag(e)
    }
}

/// Plan a whole workflow as chained advance reservations, atomically:
/// on any failure every committed stage is released and the error returned.
///
/// `deadline` (optional) bounds the completion of *every* stage.
pub fn schedule_reserved(
    sched: &mut CoAllocScheduler,
    dag: &Dag,
    submit: Time,
    deadline: Option<Time>,
) -> Result<WorkflowPlan, WorkflowError> {
    let order = dag.topo_order()?;
    let mut grants: Vec<Option<Grant>> = vec![None; dag.len()];
    let mut attempts = 0u32;
    let rollback = |sched: &mut CoAllocScheduler, grants: &[Option<Grant>]| {
        for g in grants.iter().flatten() {
            sched
                .release(g.job)
                .expect("rollback of a just-committed stage");
        }
    };
    for &sid in &order {
        let stage = dag.stage(sid);
        let earliest = dag
            .deps(sid)
            .iter()
            .map(|d| grants[d.0].as_ref().expect("topo order").end)
            .max()
            .unwrap_or(submit)
            .max(submit);
        let req = Request::advance(submit, earliest, stage.duration, stage.servers);
        let result = match (deadline, stage.required.is_empty()) {
            (Some(dl), true) => sched.submit_with_deadline(&req, dl),
            (None, true) => sched.submit(&req),
            // Constrained stages: filter by capability; deadline enforced
            // post-hoc below (submit_constrained has no deadline variant).
            (_, false) => sched.submit_constrained(&req, stage.required),
        };
        match result {
            Ok(grant) => {
                if let Some(dl) = deadline {
                    if grant.end > dl {
                        sched.release(grant.job).expect("just committed");
                        rollback(sched, &grants);
                        return Err(WorkflowError::DeadlineMiss { stage: sid });
                    }
                }
                attempts += grant.attempts;
                grants[sid.0] = Some(grant);
            }
            Err(cause) => {
                rollback(sched, &grants);
                return Err(WorkflowError::StageFailed { stage: sid, cause });
            }
        }
    }
    let grants: Vec<Grant> = grants.into_iter().map(|g| g.unwrap()).collect();
    let makespan_end = grants.iter().map(|g| g.end).max().unwrap_or(submit);
    Ok(WorkflowPlan {
        grants,
        makespan_end,
        attempts,
    })
}

/// Execute a workflow reactively: advance the scheduler clock to each
/// stage's readiness time and submit on demand. Not atomic — on failure,
/// earlier stages have already *run* (their windows are in the past); the
/// error reports how far execution got.
pub fn schedule_reactive(
    sched: &mut CoAllocScheduler,
    dag: &Dag,
    submit: Time,
) -> Result<WorkflowPlan, WorkflowError> {
    dag.topo_order()?; // validate acyclicity
    let mut grants: Vec<Option<Grant>> = vec![None; dag.len()];
    let mut attempts = 0u32;
    // Event-ordered execution: stages become ready when all dependencies
    // complete, and the clock advances through readiness times in order —
    // parallel branches must not be delayed by each other's submissions.
    let n = dag.len();
    let mut indegree: Vec<usize> = (0..n).map(|i| dag.deps(StageId(i)).len()).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for d in dag.deps(StageId(i)) {
            children[d.0].push(i);
        }
    }
    // Min-heap of (ready time, stage index).
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Time, usize)>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| std::cmp::Reverse((submit, i)))
        .collect();
    while let Some(std::cmp::Reverse((ready, i))) = heap.pop() {
        let sid = StageId(i);
        let stage = dag.stage(sid);
        sched.advance_to(ready);
        let req = Request::on_demand(ready, stage.duration, stage.servers);
        let result = if stage.required.is_empty() {
            sched.submit(&req)
        } else {
            sched.submit_constrained(&req, stage.required)
        };
        match result {
            Ok(grant) => {
                attempts += grant.attempts;
                let end = grant.end;
                grants[i] = Some(grant);
                for &c in &children[i] {
                    indegree[c] -= 1;
                    if indegree[c] == 0 {
                        let ready_c = dag
                            .deps(StageId(c))
                            .iter()
                            .map(|d| grants[d.0].as_ref().expect("completed").end)
                            .max()
                            .unwrap_or(end)
                            .max(submit);
                        heap.push(std::cmp::Reverse((ready_c, c)));
                    }
                }
            }
            Err(cause) => return Err(WorkflowError::StageFailed { stage: sid, cause }),
        }
    }
    let grants: Vec<Grant> = grants.into_iter().map(|g| g.unwrap()).collect();
    let makespan_end = grants.iter().map(|g| g.end).max().unwrap_or(submit);
    Ok(WorkflowPlan {
        grants,
        makespan_end,
        attempts,
    })
}

/// Dispatch on [`Mode`].
pub fn schedule(
    sched: &mut CoAllocScheduler,
    dag: &Dag,
    submit: Time,
    mode: Mode,
) -> Result<WorkflowPlan, WorkflowError> {
    match mode {
        Mode::Reserved => schedule_reserved(sched, dag, submit, None),
        Mode::Reactive => schedule_reactive(sched, dag, submit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Stage;
    use coalloc_core::attrs::AttrSet;

    fn sched(n: u32) -> CoAllocScheduler {
        CoAllocScheduler::new(
            n,
            SchedulerConfig::builder()
                .tau(Dur(10))
                .horizon(Dur(1000))
                .delta_t(Dur(10))
                .build(),
        )
    }

    fn diamond() -> Dag {
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(10), 2));
        let b = dag.add_stage(Stage::new("b", Dur(20), 1));
        let c = dag.add_stage(Stage::new("c", Dur(5), 1));
        let d = dag.add_stage(Stage::new("d", Dur(10), 3));
        dag.add_dep(a, b).unwrap();
        dag.add_dep(a, c).unwrap();
        dag.add_dep(b, d).unwrap();
        dag.add_dep(c, d).unwrap();
        dag
    }

    #[test]
    fn reserved_diamond_matches_critical_path_when_uncontended() {
        let mut s = sched(4);
        let dag = diamond();
        let plan = schedule_reserved(&mut s, &dag, Time::ZERO, None).unwrap();
        // a: [0,10); b: [10,30); c: [10,15); d: [30,40).
        assert_eq!(plan.start(StageId(0)), Time::ZERO);
        assert_eq!(plan.start(StageId(1)), Time(10));
        assert_eq!(plan.start(StageId(2)), Time(10));
        assert_eq!(plan.start(StageId(3)), Time(30));
        assert_eq!(plan.makespan_end, Time(40));
        assert_eq!(
            plan.makespan_end - Time::ZERO,
            dag.critical_path().unwrap()
        );
        s.check_consistency();
    }

    #[test]
    fn precedence_always_respected() {
        let mut s = sched(3);
        let dag = diamond();
        let plan = schedule(&mut s, &dag, Time(5), Mode::Reserved).unwrap();
        for sid in 0..dag.len() {
            for &dep in dag.deps(StageId(sid)) {
                assert!(
                    plan.start(StageId(sid)) >= plan.end(dep),
                    "stage {sid} starts before dep {} ends",
                    dep.0
                );
            }
        }
    }

    #[test]
    fn atomic_rollback_on_unplaceable_stage() {
        let mut s = sched(2);
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(10), 2));
        let b = dag.add_stage(Stage::new("b", Dur(10), 5)); // wider than N
        dag.add_dep(a, b).unwrap();
        let err = schedule_reserved(&mut s, &dag, Time::ZERO, None).unwrap_err();
        assert!(matches!(err, WorkflowError::StageFailed { stage, .. } if stage == StageId(1)));
        // Stage a's reservation was rolled back: the system is fully idle.
        assert_eq!(s.range_search(Time::ZERO, Time(100)).len(), 2);
        s.check_consistency();
    }

    #[test]
    fn deadline_enforced_and_rolled_back() {
        let mut s = sched(4);
        let dag = diamond(); // critical path 40
        assert!(schedule_reserved(&mut s, &dag, Time::ZERO, Some(Time(40))).is_ok());
        let mut s2 = sched(4);
        let err = schedule_reserved(&mut s2, &dag, Time::ZERO, Some(Time(35))).unwrap_err();
        assert!(matches!(
            err,
            WorkflowError::DeadlineMiss { .. } | WorkflowError::StageFailed { .. }
        ));
        s2.check_consistency();
        assert_eq!(s2.range_search(Time::ZERO, Time(100)).len(), 4, "rolled back");
    }

    #[test]
    fn reserved_plan_survives_competing_load() {
        let mut s = sched(4);
        let dag = diamond();
        let plan = schedule_reserved(&mut s, &dag, Time::ZERO, None).unwrap();
        // A burst of competing jobs arrives after planning.
        for _ in 0..10 {
            let _ = s.submit(&Request::on_demand(Time::ZERO, Dur(50), 2));
        }
        // The plan's reservations are untouched.
        for g in &plan.grants {
            assert!(s.job(g.job).is_some());
        }
        s.check_consistency();
    }

    #[test]
    fn reactive_is_displaced_by_competing_load() {
        // Plan reserved on one copy, reactive on another with a competitor
        // injected mid-flight; the reactive makespan suffers.
        let dag = {
            let mut d = Dag::new();
            let a = d.add_stage(Stage::new("a", Dur(20), 3));
            let b = d.add_stage(Stage::new("b", Dur(20), 3));
            d.add_dep(a, b).unwrap();
            d
        };
        let mut reserved = sched(3);
        let plan_r = schedule_reserved(&mut reserved, &dag, Time::ZERO, None).unwrap();
        // Competitor submitted after planning cannot displace stage b.
        let comp = reserved
            .submit(&Request::on_demand(Time::ZERO, Dur(30), 3))
            .unwrap();
        assert!(comp.start >= plan_r.makespan_end);
        assert_eq!(plan_r.makespan_end, Time(40));

        let mut reactive = sched(3);
        // Stage a runs [0, 20).
        let a = reactive.submit(&Request::on_demand(Time::ZERO, Dur(20), 3)).unwrap();
        assert_eq!(a.start, Time::ZERO);
        // Competitor (submitted at t=1, shifted by Delta_t) books [21, 51)
        // before b becomes ready.
        let comp = reactive
            .submit(&Request::on_demand(Time(1), Dur(30), 3))
            .unwrap();
        assert_eq!(comp.start, Time(21));
        // Reactive b can only start at 50.
        reactive.advance_to(Time(20));
        let b = reactive.submit(&Request::on_demand(Time(20), Dur(20), 3)).unwrap();
        assert!(b.start >= Time(50));
    }

    #[test]
    fn constrained_stages_route_to_tagged_servers() {
        const GPU: AttrSet = AttrSet(1);
        let mut s = sched(4);
        s.set_server_attrs(ServerId(3), GPU);
        let mut dag = Dag::new();
        let pre = dag.add_stage(Stage::new("prep", Dur(10), 2));
        let gpu = dag.add_stage(Stage::new("train", Dur(10), 1).requiring(GPU));
        dag.add_dep(pre, gpu).unwrap();
        let plan = schedule_reserved(&mut s, &dag, Time::ZERO, None).unwrap();
        assert_eq!(plan.grants[gpu.0].servers, vec![ServerId(3)]);
        assert_eq!(plan.start(gpu), Time(10));
        let _ = pre;
    }

    #[test]
    fn reactive_mode_runs_the_dag() {
        let mut s = sched(4);
        let dag = diamond();
        let plan = schedule(&mut s, &dag, Time::ZERO, Mode::Reactive).unwrap();
        assert_eq!(plan.makespan_end, Time(40));
        s.check_consistency();
    }
}
