//! Workflow DAGs: stages with temporal/spatial demands and precedence
//! edges.
//!
//! The paper's introduction motivates co-allocation with "scientific
//! workflow applications \[that\] involve the orchestration of multiple
//! computation and data transfer stages \[with\] strong dependency on
//! completion times" (GriPhyN/LIGO, SCEC, Montage). A [`Dag`] models such a
//! workflow; scheduling lives in [`crate::schedule`](crate::schedule()).

use coalloc_core::attrs::AttrSet;
use coalloc_core::prelude::Dur;

/// Index of a stage within its DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub usize);

/// One workflow stage: a co-allocation demand.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Human-readable name.
    pub name: String,
    /// Temporal size `l_r`.
    pub duration: Dur,
    /// Spatial size `n_r`.
    pub servers: u32,
    /// Capability tags the stage's servers must carry.
    pub required: AttrSet,
}

impl Stage {
    /// A stage with no capability constraints.
    pub fn new(name: impl Into<String>, duration: Dur, servers: u32) -> Stage {
        Stage {
            name: name.into(),
            duration,
            servers,
            required: AttrSet::NONE,
        }
    }

    /// Add a capability requirement.
    #[must_use]
    pub fn requiring(mut self, required: AttrSet) -> Stage {
        self.required = required;
        self
    }
}

/// A directed acyclic graph of stages.
#[derive(Clone, Debug, Default)]
pub struct Dag {
    stages: Vec<Stage>,
    /// `deps[i]` = stages that must complete before stage `i` starts.
    deps: Vec<Vec<StageId>>,
}

/// DAG construction/validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a stage that does not exist.
    UnknownStage(StageId),
    /// The dependency graph contains a cycle through this stage.
    Cycle(StageId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnknownStage(s) => write!(f, "unknown stage #{}", s.0),
            DagError::Cycle(s) => write!(f, "dependency cycle through stage #{}", s.0),
        }
    }
}

impl std::error::Error for DagError {}

impl Dag {
    /// An empty workflow.
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Add a stage; returns its id.
    pub fn add_stage(&mut self, stage: Stage) -> StageId {
        self.stages.push(stage);
        self.deps.push(Vec::new());
        StageId(self.stages.len() - 1)
    }

    /// Declare that `after` cannot start before `before` completes.
    pub fn add_dep(&mut self, before: StageId, after: StageId) -> Result<(), DagError> {
        for s in [before, after] {
            if s.0 >= self.stages.len() {
                return Err(DagError::UnknownStage(s));
            }
        }
        if !self.deps[after.0].contains(&before) {
            self.deps[after.0].push(before);
        }
        Ok(())
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the DAG has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage record.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.0]
    }

    /// Direct dependencies of a stage.
    pub fn deps(&self, id: StageId) -> &[StageId] {
        &self.deps[id.0]
    }

    /// Topological order (Kahn), or the cycle error. Ties are broken by
    /// **descending critical-path length** — the classic list-scheduling /
    /// HEFT "upward rank", so long chains are placed first.
    pub fn topo_order(&self) -> Result<Vec<StageId>, DagError> {
        let n = self.stages.len();
        let ranks = self.upward_ranks()?;
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, deps) in self.deps.iter().enumerate() {
            indegree[i] = deps.len();
            for d in deps {
                children[d.0].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while !ready.is_empty() {
            // Highest upward rank first.
            ready.sort_by(|&a, &b| {
                ranks[b]
                    .cmp(&ranks[a])
                    .then_with(|| a.cmp(&b))
            });
            let next = ready.remove(0);
            order.push(StageId(next));
            for &c in &children[next] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).unwrap();
            return Err(DagError::Cycle(StageId(stuck)));
        }
        Ok(order)
    }

    /// Upward rank of each stage: the stage's duration plus the longest
    /// chain of dependents below it (HEFT's ranking with unit communication
    /// cost zero). Errors on cycles.
    pub fn upward_ranks(&self) -> Result<Vec<Dur>, DagError> {
        let n = self.stages.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, deps) in self.deps.iter().enumerate() {
            for d in deps {
                children[d.0].push(i);
            }
        }
        let mut ranks: Vec<Option<Dur>> = vec![None; n];
        // Memoized DFS with an explicit in-progress mark for cycle detection.
        fn rank(
            i: usize,
            stages: &[Stage],
            children: &[Vec<usize>],
            ranks: &mut Vec<Option<Dur>>,
            visiting: &mut Vec<bool>,
        ) -> Result<Dur, DagError> {
            if let Some(r) = ranks[i] {
                return Ok(r);
            }
            if visiting[i] {
                return Err(DagError::Cycle(StageId(i)));
            }
            visiting[i] = true;
            let mut below = Dur::ZERO;
            for &c in &children[i] {
                let r = rank(c, stages, children, ranks, visiting)?;
                if r > below {
                    below = r;
                }
            }
            visiting[i] = false;
            let r = stages[i].duration + below;
            ranks[i] = Some(r);
            Ok(r)
        }
        let mut visiting = vec![false; n];
        for i in 0..n {
            rank(i, &self.stages, &children, &mut ranks, &mut visiting)?;
        }
        Ok(ranks.into_iter().map(|r| r.unwrap()).collect())
    }

    /// The critical-path length: a lower bound on any schedule's makespan.
    pub fn critical_path(&self) -> Result<Dur, DagError> {
        Ok(self
            .upward_ranks()?
            .into_iter()
            .max()
            .unwrap_or(Dur::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [StageId; 4]) {
        // a -> b, a -> c, b -> d, c -> d
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(10), 2));
        let b = dag.add_stage(Stage::new("b", Dur(20), 1));
        let c = dag.add_stage(Stage::new("c", Dur(5), 1));
        let d = dag.add_stage(Stage::new("d", Dur(10), 3));
        dag.add_dep(a, b).unwrap();
        dag.add_dep(a, c).unwrap();
        dag.add_dep(b, d).unwrap();
        dag.add_dep(c, d).unwrap();
        (dag, [a, b, c, d])
    }

    #[test]
    fn topo_order_respects_deps() {
        let (dag, [a, b, c, d]) = diamond();
        let order = dag.topo_order().unwrap();
        let pos = |s: StageId| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
        // Upward ranks: a = 10+max(20+10, 5+10) = 40; b = 30; c = 15; d = 10.
        let ranks = dag.upward_ranks().unwrap();
        assert_eq!(ranks, vec![Dur(40), Dur(30), Dur(15), Dur(10)]);
        // HEFT tie-break puts b before c.
        assert!(pos(b) < pos(c));
        assert_eq!(dag.critical_path().unwrap(), Dur(40));
    }

    #[test]
    fn cycle_detected() {
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(1), 1));
        let b = dag.add_stage(Stage::new("b", Dur(1), 1));
        dag.add_dep(a, b).unwrap();
        dag.add_dep(b, a).unwrap();
        assert!(matches!(dag.topo_order(), Err(DagError::Cycle(_))));
        assert!(matches!(dag.upward_ranks(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn unknown_stage_rejected() {
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(1), 1));
        assert_eq!(
            dag.add_dep(a, StageId(9)),
            Err(DagError::UnknownStage(StageId(9)))
        );
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut dag = Dag::new();
        let a = dag.add_stage(Stage::new("a", Dur(1), 1));
        let b = dag.add_stage(Stage::new("b", Dur(1), 1));
        dag.add_dep(a, b).unwrap();
        dag.add_dep(a, b).unwrap();
        assert_eq!(dag.deps(b).len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let dag = Dag::new();
        assert!(dag.is_empty());
        assert_eq!(dag.critical_path().unwrap(), Dur::ZERO);
        let mut one = Dag::new();
        one.add_stage(Stage::new("solo", Dur(7), 1));
        assert_eq!(one.topo_order().unwrap().len(), 1);
        assert_eq!(one.critical_path().unwrap(), Dur(7));
    }

    #[test]
    fn stage_constraints_carried() {
        let s = Stage::new("gpu-stage", Dur(5), 2).requiring(AttrSet::tag(3));
        assert!(s.required.satisfies(AttrSet::tag(3)));
    }
}
