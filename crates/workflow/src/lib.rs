//! # coalloc-workflow
//!
//! Workflow (DAG) co-allocation on top of the online scheduler — the
//! paper's motivating application class: "several scientific workflow
//! applications involve the orchestration of multiple computation and data
//! transfer stages \[with\] strong dependency on completion times; thus the
//! ability to co-schedule and synchronize resource usage becomes crucial"
//! (Section 1).
//!
//! A [`Dag`] of stages is planned as a chain of advance reservations
//! ([`schedule::schedule_reserved`]) — atomically, with rollback, optional
//! end-to-end deadlines, and HEFT-style upward-rank ordering — or executed
//! reactively ([`schedule::schedule_reactive`]) the way a dependency engine
//! over a batch queue would, for comparison.

//! ## Example
//!
//! ```
//! use coalloc_core::prelude::*;
//! use coalloc_workflow::{schedule_reserved, Dag, Stage};
//!
//! let mut dag = Dag::new();
//! let fetch = dag.add_stage(Stage::new("fetch", Dur::from_mins(30), 2));
//! let crunch = dag.add_stage(Stage::new("crunch", Dur::from_hours(2), 8));
//! dag.add_dep(fetch, crunch).unwrap();
//!
//! let mut sched = CoAllocScheduler::new(8, SchedulerConfig::default());
//! let plan = schedule_reserved(&mut sched, &dag, Time::ZERO, None).unwrap();
//! assert_eq!(plan.start(crunch), plan.end(fetch)); // chained reservation
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod schedule;

pub use dag::{Dag, DagError, Stage, StageId};
pub use schedule::{schedule, schedule_reactive, schedule_reserved, Mode, WorkflowError, WorkflowPlan};
