//! # coalloc-poller
//!
//! A minimal, dependency-free readiness poller: the one `unsafe` FFI call
//! the event-driven serving path needs, wrapped so every other crate can
//! stay `#![forbid(unsafe_code)]`.
//!
//! The wrapper binds `poll(2)` directly from the C library that `std`
//! already links — no `libc` crate, no vendored bindings — and exposes a
//! safe [`poll`] over a slice of [`PollFd`] entries. Level-triggered
//! semantics: a readable/writable fd is re-reported on every call until it
//! is drained, which is exactly what a retry-until-`WouldBlock` event loop
//! wants (no edge-tracking state to get wrong).
//!
//! Scope is deliberately tiny: one syscall, `EINTR` retried, a millisecond
//! timeout. `epoll`/`kqueue` would scale the *wait* better than O(fds),
//! but the serving path batches whole readiness rounds per wakeup, so
//! `poll` keeps the code portable (Linux + macOS + BSDs) and auditable —
//! the entire unsafe surface of the workspace is the one block in
//! [`poll`].
//!
//! ```
//! use coalloc_poller::{poll, PollFd, POLLIN, POLLOUT};
//! use std::os::fd::AsRawFd;
//! use std::os::unix::net::UnixStream;
//!
//! let (a, b) = UnixStream::pair().unwrap();
//! let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN | POLLOUT)];
//! let n = poll(&mut fds, Some(std::time::Duration::from_millis(10))).unwrap();
//! assert_eq!(n, 1); // a fresh socket pair is immediately writable
//! assert!(fds[0].writable() && !fds[0].readable());
//! drop(b);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// There is data to read (or a peer hangup to observe via `read() == 0`).
pub const POLLIN: i16 = 0x001;
/// Writing will not block (at least one byte can be accepted).
pub const POLLOUT: i16 = 0x004;
/// An error condition on the fd (revents only; always polled for).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (revents only; always polled for).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only): a bookkeeping bug in the caller.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: the fd, the events the caller is
/// interested in, and the events the kernel reported back.
///
/// `#[repr(C)]` with exactly the `struct pollfd` field layout (an `int`
/// plus two `short`s), so a `&mut [PollFd]` can be handed to the syscall
/// directly.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd is ignored by the
    /// kernel, per POSIX — callers can use that to blank out an entry).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`], [`POLLOUT`], bitwise-or'd).
    pub events: i16,
    /// Returned events, filled by [`poll`]; includes [`POLLERR`],
    /// [`POLLHUP`] and [`POLLNVAL`] even when not requested.
    pub revents: i16,
}

impl PollFd {
    /// A fresh entry watching `fd` for `events`, with `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Reading now would make progress: data, EOF, a hangup or an error
    /// (all of which a `read` call surfaces without blocking).
    #[inline]
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writing now would make progress (or fail fast on an error).
    #[inline]
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The kernel says this fd is not open: the caller's fd bookkeeping
    /// has a stale entry.
    #[inline]
    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

// `nfds_t` is `unsigned long` on Linux and `unsigned int` on macOS; both
// are what their C headers say, so the extern signature below matches the
// platform ABI either way.
#[cfg(target_os = "macos")]
type Nfds = std::ffi::c_uint;
#[cfg(not(target_os = "macos"))]
type Nfds = std::ffi::c_ulong;

extern "C" {
    #[link_name = "poll"]
    fn c_poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Wait until at least one entry has a ready event, the timeout elapses
/// (`Ok(0)`), or an error occurs. `None` waits forever.
///
/// `EINTR` is retried with the full timeout (a signal storm can extend the
/// wait; the serving loop recomputes its deadlines every round, so it does
/// not care). Sub-millisecond timeouts round *up* to 1 ms so a nonzero
/// wait never degenerates into a busy spin.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as std::ffi::c_int
            }
        }
    };
    loop {
        // SAFETY: `PollFd` is `#[repr(C)]` with the exact field order and
        // types of `struct pollfd`, the pointer/length pair comes from a
        // live `&mut [PollFd]`, and the kernel writes only the `revents`
        // field of the first `fds.len()` entries.
        let n = unsafe { c_poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn writable_immediately_readable_after_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable(), "fresh pair end is writable");
        assert!(
            fds[0].revents & POLLIN == 0,
            "no data yet: {:#x}",
            fds[0].revents
        );

        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "one byte pending");
    }

    #[test]
    fn timeout_returns_zero() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let t0 = std::time::Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "nothing to read");
        assert!(t0.elapsed() >= Duration::from_millis(25), "waited the timeout");
    }

    #[test]
    fn hangup_reported_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "peer hangup must wake a reader");
        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 0, "and read() observes EOF");
    }

    #[test]
    fn sub_millisecond_timeout_rounds_up_not_to_busy_spin() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Must behave as a (short) sleep, not as an instant return storm.
        let n = poll(&mut fds, Some(Duration::from_micros(200))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn many_fds_only_ready_ones_reported() {
        let pairs: Vec<(UnixStream, UnixStream)> =
            (0..32).map(|_| UnixStream::pair().unwrap()).collect();
        let mut writer = pairs[7].0.try_clone().unwrap();
        writer.write_all(b"ping").unwrap();
        let mut fds: Vec<PollFd> = pairs
            .iter()
            .map(|(_, b)| PollFd::new(b.as_raw_fd(), POLLIN))
            .collect();
        let n = poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
        assert_eq!(n, 1, "exactly one end has data");
        for (i, fd) in fds.iter().enumerate() {
            assert_eq!(fd.readable(), i == 7, "only pair 7 is readable");
        }
    }
}
