//! Property tests for the authoritative timeline against a brute-force
//! second-by-second occupancy oracle.

use coalloc_core::ids::{JobId, ServerId};
use coalloc_core::prelude::*;
use coalloc_core::timeline::Timeline;
use proptest::prelude::*;

const HORIZON: i64 = 200;

/// Oracle: busy[t] per second on one server.
#[derive(Clone)]
struct Oracle {
    busy: Vec<bool>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            busy: vec![false; HORIZON as usize],
        }
    }
    fn free_range(&self, a: i64, b: i64) -> bool {
        (a..b).all(|t| !self.busy[t as usize])
    }
    fn set(&mut self, a: i64, b: i64, v: bool) {
        for t in a..b {
            self.busy[t as usize] = v;
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Reserve { start: i64, len: i64 },
    ReleaseNth(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..HORIZON - 1, 1i64..40).prop_map(|(start, len)| Op::Reserve { start, len }),
            (0usize..20).prop_map(Op::ReleaseNth),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random reserve/release sequences on one server agree with the
    /// per-second oracle: a window is reservable iff the oracle says it is
    /// free, and invariants hold after every mutation.
    #[test]
    fn timeline_matches_second_oracle(ops in ops_strategy()) {
        let mut tl = Timeline::new(1, Time::ZERO);
        let mut oracle = Oracle::new();
        let mut live: Vec<(JobId, i64, i64)> = Vec::new();
        let mut next_job = 0u64;
        let srv = ServerId(0);
        for op in ops {
            match op {
                Op::Reserve { start, len } => {
                    let end = (start + len).min(HORIZON);
                    if end <= start {
                        continue;
                    }
                    let covering = tl.covering_idle(srv, Time(start), Time(end));
                    prop_assert_eq!(
                        covering.is_some(),
                        oracle.free_range(start, end),
                        "availability mismatch for [{}, {})",
                        start,
                        end
                    );
                    if let Some(p) = covering {
                        let job = JobId(next_job);
                        next_job += 1;
                        tl.reserve(p.id, job, Time(start), Time(end));
                        oracle.set(start, end, true);
                        live.push((job, start, end));
                        tl.check_invariants();
                    }
                }
                Op::ReleaseNth(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (job, start, end) = live.swap_remove(i % live.len());
                    tl.release(srv, job, Time(start), Time(end));
                    oracle.set(start, end, false);
                    tl.check_invariants();
                }
            }
        }
        // Final sweep: every 1-second probe agrees.
        for t in 0..HORIZON {
            prop_assert_eq!(
                tl.covering_idle(srv, Time(t), Time(t + 1)).is_some(),
                oracle.free_range(t, t + 1),
                "final state mismatch at {}",
                t
            );
        }
        // Busy-seconds accounting agrees with the oracle.
        let oracle_busy: i64 = oracle.busy.iter().filter(|&&b| b).count() as i64;
        prop_assert_eq!(tl.busy_secs_before(Time(HORIZON)), oracle_busy);
    }
}
