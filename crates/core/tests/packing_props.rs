//! Property tests for sub-tau job packing.

use coalloc_core::packing::{PackedGroup, SmallJob};
use coalloc_core::prelude::*;
use proptest::prelude::*;

fn jobs_strategy() -> impl Strategy<Value = Vec<SmallJob>> {
    prop::collection::vec((1i64..120, 1u32..5), 1..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (d, n))| SmallJob {
                tag: i as u64,
                duration: Dur(d),
                servers: n,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packing is complete (every job placed exactly once), collision-free,
    /// fits the combined request, and is at least tau long.
    #[test]
    fn packing_is_sound(jobs in jobs_strategy(), tau in 50i64..200) {
        let tau = Dur(tau);
        let g = PackedGroup::pack(&jobs, tau).unwrap();
        g.check_disjoint(&jobs);
        prop_assert!(g.duration() >= tau);
        let mut tags: Vec<u64> = g.placements().iter().map(|p| p.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..jobs.len() as u64).collect::<Vec<_>>());
    }

    /// The reserved area is never catastrophically larger than the packed
    /// work: bounded by 4x work + one tau-by-width pad (first-fit shelves
    /// are 2-approximate; the bound here is deliberately loose but finite).
    #[test]
    fn packing_is_not_wasteful(jobs in jobs_strategy(), tau in 50i64..200) {
        let tau = Dur(tau);
        let g = PackedGroup::pack(&jobs, tau).unwrap();
        let work: i64 = jobs.iter().map(|j| j.duration.secs() * j.servers as i64).sum();
        let area = g.duration().secs() * g.servers() as i64;
        let bound = work * 4 + tau.secs() * g.servers() as i64;
        prop_assert!(area <= bound, "area {area} work {work} bound {bound}");
    }

    /// The packed request schedules end-to-end and every placement fits
    /// inside the granted window.
    #[test]
    fn packed_request_is_schedulable(jobs in jobs_strategy()) {
        let tau = Dur(600);
        let g = PackedGroup::pack(&jobs, tau).unwrap();
        let width = g.servers();
        let mut s = CoAllocScheduler::new(
            width.max(1),
            SchedulerConfig::builder()
                .tau(tau)
                .horizon(Dur(600 * 64))
                .delta_t(tau)
                .build(),
        );
        let grant = s.submit(&g.request(Time::ZERO, Time::ZERO)).unwrap();
        prop_assert_eq!(grant.servers.len() as u32, width);
        for p in g.placements() {
            let d = jobs[p.tag as usize].duration;
            prop_assert!(grant.start + p.offset + d <= grant.end);
            prop_assert!(p.first_lane + p.lanes <= width);
        }
        s.check_consistency();
    }
}
