//! Property tests for capacity-profile attempt jumping (DESIGN.md §14).
//!
//! The contract under test: with `jump_retries` on, the scheduler makes
//! **bit-identical decisions** to the exhaustive linear retry walk — same
//! grants (start, end, servers, `attempts`), same errors (variant and
//! fields) — for every selection policy and any interleaving of submits,
//! advances and releases. Only the split of a search's budget between
//! `attempts` (probed) and `attempts_skipped`/`attempts_jumped` (proved
//! infeasible without probing) may differ, and it must differ *exactly*
//! by the jumped count.

use coalloc_core::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const POLICIES: [SelectionPolicy; 4] = [
    SelectionPolicy::PaperOrder,
    SelectionPolicy::BestFit,
    SelectionPolicy::WorstFit,
    SelectionPolicy::ByServerId,
];

fn cfg(policy: SelectionPolicy, jump: bool) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .policy(policy)
        .seed(0x7E57)
        .jump_retries(jump)
        .build()
}

/// A churn stream: requests with clustered arrivals plus a release mask.
fn churn_stream(n_servers: u32, len: usize) -> impl Strategy<Value = (Vec<Request>, Vec<u8>)> {
    (
        prop::collection::vec(
            (
                0i64..40,  // submit offset from previous
                0i64..200, // advance offset (s_r - q_r)
                1i64..120, // duration
                1u32..=n_servers,
            ),
            1..len,
        ),
        prop::collection::vec(0u8..3, len),
    )
        .prop_map(|(raw, mask)| {
            let mut t = 0i64;
            let reqs = raw
                .into_iter()
                .map(|(dt, adv, dur, n)| {
                    t += dt;
                    Request::advance(Time(t), Time(t + adv), Dur(dur), n)
                })
                .collect();
            (reqs, mask)
        })
}

fn assert_same_reply(
    a: &Result<Grant, ScheduleError>,
    b: &Result<Grant, ScheduleError>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(x.attempts, y.attempts);
            prop_assert_eq!(x.waiting, y.waiting);
            prop_assert_eq!(&x.servers, &y.servers);
        }
        (Err(x), Err(y)) => prop_assert_eq!(x, y),
        (x, y) => prop_assert!(false, "jump/linear divergence: jump={x:?} linear={y:?}"),
    }
    Ok(())
}

/// Accounting identity between the two modes: every attempt the linear
/// walk probes is either probed or jumped under jumping, and jumped
/// attempts are the only new source of skips.
fn assert_stats_identity(jump: &OpStats, linear: &OpStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        jump.attempts + jump.attempts_jumped,
        linear.attempts,
        "probed + jumped must equal the linear probe count"
    );
    prop_assert_eq!(
        jump.attempts_skipped - jump.attempts_jumped,
        linear.attempts_skipped,
        "non-jump skips (horizon/deadline short-circuit) must match"
    );
    prop_assert_eq!(linear.attempts_jumped, 0, "linear mode never jumps");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lockstep jump-vs-linear over random churn, all four policies.
    #[test]
    fn jumping_preserves_decisions_under_churn(
        (reqs, mask) in churn_stream(6, 40),
        policy_idx in 0usize..4,
    ) {
        let policy = POLICIES[policy_idx];
        let mut jump = CoAllocScheduler::new(6, cfg(policy, true));
        let mut lin = CoAllocScheduler::new(6, cfg(policy, false));
        let mut jobs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            jump.advance_to(r.submit);
            lin.advance_to(r.submit);
            let a = jump.submit(r);
            let b = lin.submit(r);
            assert_same_reply(&a, &b)?;
            if let Ok(g) = &a {
                jobs.push(g.job);
            }
            // Interleave releases so the profile sees removals too.
            if mask[i] == 1 {
                if let Some(j) = jobs.pop() {
                    prop_assert_eq!(jump.release(j), lin.release(j));
                }
            }
        }
        jump.check_consistency();
        lin.check_consistency();
        assert_stats_identity(jump.stats(), lin.stats())?;
    }

    /// Same lockstep for the deadline-capped path, which uses a smaller
    /// attempt budget than the plain submit.
    #[test]
    fn jumping_preserves_deadline_decisions(
        (reqs, _mask) in churn_stream(4, 25),
        slack in 0i64..300,
    ) {
        let mut jump = CoAllocScheduler::new(4, cfg(SelectionPolicy::PaperOrder, true));
        let mut lin = CoAllocScheduler::new(4, cfg(SelectionPolicy::PaperOrder, false));
        for r in &reqs {
            jump.advance_to(r.submit);
            lin.advance_to(r.submit);
            let deadline = r.earliest_start + r.duration + Dur(slack);
            let a = jump.submit_with_deadline(r, deadline);
            let b = lin.submit_with_deadline(r, deadline);
            assert_same_reply(&a, &b)?;
        }
        jump.check_consistency();
        assert_stats_identity(jump.stats(), lin.stats())?;
    }

    /// Snapshot → restore → resubmit determinism: the profile is rebuilt
    /// from the snapshot's reservations, so a restored scheduler jumps —
    /// and therefore decides and accounts — exactly like the original.
    #[test]
    fn restored_profile_jumps_identically(
        (reqs, mask) in churn_stream(5, 25),
        (probes, _m2) in churn_stream(5, 15),
    ) {
        let mut s = CoAllocScheduler::new(5, cfg(SelectionPolicy::ByServerId, true));
        let mut jobs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            s.advance_to(r.submit);
            if let Ok(g) = s.submit(r) {
                jobs.push(g.job);
            }
            if mask[i] == 1 {
                if let Some(j) = jobs.pop() {
                    s.release(j).unwrap();
                }
            }
        }
        let snap = s.snapshot();
        let mut restored = CoAllocScheduler::restore(&snap).unwrap();
        restored.check_consistency(); // cross-checks the rebuilt profile
        let base_s = *s.stats();
        let base_r = *restored.stats();
        for p in &probes {
            let t = p.submit.max(s.now());
            s.advance_to(t);
            restored.advance_to(t);
            let a = s.submit(p);
            let b = restored.submit(p);
            assert_same_reply(&a, &b)?;
        }
        // Identical attempt accounting, jumped counts included. (Physical
        // visit counters may drift: restoring rebuilds trees from scratch,
        // so their shapes — not their contents — can differ.)
        let (ds, dr) = (s.stats().since(&base_s), restored.stats().since(&base_r));
        prop_assert_eq!(ds.attempts, dr.attempts);
        prop_assert_eq!(ds.attempts_skipped, dr.attempts_skipped);
        prop_assert_eq!(ds.attempts_jumped, dr.attempts_jumped);
        prop_assert_eq!(ds.phase1_searches, dr.phase1_searches);
        restored.check_consistency();
    }
}

/// The exact `Exhausted` rendering is part of the wire-visible contract
/// (servers echo it to clients), and jumping must not change its fields:
/// `attempts` is the full permitted try count and `last_tried` the final
/// permitted start, whether or not the walk actually probed them.
#[test]
fn exhausted_error_is_identical_and_pinned_under_jumping() {
    for jump in [false, true] {
        let mut s = CoAllocScheduler::new(
            1,
            SchedulerConfig::builder()
                .tau(Dur(10))
                .horizon(Dur(100))
                .delta_t(Dur(10))
                .r_max(2)
                .jump_retries(jump)
                .build(),
        );
        s.submit(&Request::on_demand(Time::ZERO, Dur(90), 1)).unwrap();
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 3,
                last_tried: Time(20)
            },
            "jump={jump}"
        );
        assert_eq!(
            err.to_string(),
            "no feasible start found after 3 attempts (last tried t=20)",
            "jump={jump}"
        );
    }
}

#[test]
fn horizon_error_is_identical_and_pinned_under_jumping() {
    for jump in [false, true] {
        let mut s = CoAllocScheduler::new(
            2,
            SchedulerConfig::builder()
                .tau(Dur(10))
                .horizon(Dur(100))
                .delta_t(Dur(10))
                .jump_retries(jump)
                .build(),
        );
        // Fill everything so no early grant can mask the horizon check.
        s.submit(&Request::on_demand(Time::ZERO, Dur(100), 2)).unwrap();
        let err = s.submit(&Request::on_demand(Time::ZERO, Dur(60), 1)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::HorizonExceeded {
                horizon_end: Time(100)
            },
            "jump={jump}"
        );
        assert_eq!(
            err.to_string(),
            "request does not fit before the horizon (t=100)",
            "jump={jump}"
        );
    }
}
