//! Edge cases around slot geometry, horizons and fragmentation.

use coalloc_core::prelude::*;

fn cfg(tau: i64, horizon: i64, dt: i64) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(tau))
        .horizon(Dur(horizon))
        .delta_t(Dur(dt))
        .build()
}

#[test]
fn job_exactly_filling_the_horizon() {
    let mut s = CoAllocScheduler::new(2, cfg(10, 100, 10));
    let g = s
        .submit(&Request::on_demand(Time::ZERO, Dur(100), 2))
        .expect("end == horizon_end is allowed");
    assert_eq!(g.end, s.horizon_end());
    // One second more cannot fit.
    let mut s2 = CoAllocScheduler::new(2, cfg(10, 100, 10));
    assert!(matches!(
        s2.submit(&Request::on_demand(Time::ZERO, Dur(101), 1)),
        Err(ScheduleError::HorizonExceeded { .. })
    ));
}

#[test]
fn delta_t_smaller_than_tau_probes_within_slots() {
    // Delta_t = 3, tau = 10: retries probe sub-slot offsets.
    let mut s = CoAllocScheduler::new(1, cfg(10, 200, 3));
    s.submit(&Request::on_demand(Time::ZERO, Dur(7), 1)).unwrap();
    let g = s.submit(&Request::on_demand(Time::ZERO, Dur(5), 1)).unwrap();
    // First fit is at t = 9 (attempts at 0, 3, 6 collide with [0, 7)).
    assert_eq!(g.start, Time(9));
    assert_eq!(g.attempts, 4);
    s.check_consistency();
}

#[test]
fn delta_t_larger_than_tau_skips_slots() {
    let mut s = CoAllocScheduler::new(1, cfg(10, 400, 35));
    s.submit(&Request::on_demand(Time::ZERO, Dur(30), 1)).unwrap();
    let g = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
    // Attempts at 0 (busy), 35 (free).
    assert_eq!(g.start, Time(35));
    assert_eq!(g.attempts, 2);
}

#[test]
fn sub_slot_jobs_fragment_a_single_slot() {
    // Jobs shorter than tau: several periods of one server may coexist
    // within one slot (the paper's bound of N periods per tree assumes
    // l_r >= tau; the implementation handles the general case).
    let mut s = CoAllocScheduler::new(1, cfg(100, 1000, 10));
    let a = s
        .submit(&Request::advance(Time::ZERO, Time(10), Dur(20), 1))
        .unwrap();
    let b = s
        .submit(&Request::advance(Time::ZERO, Time(50), Dur(20), 1))
        .unwrap();
    assert_eq!(a.start, Time(10));
    assert_eq!(b.start, Time(50));
    s.check_consistency();
    // The hole [30, 50) is findable.
    let hits = s.range_search(Time(30), Time(50));
    assert_eq!(hits.len(), 1);
    // And committable.
    let g = s
        .commit_selection(&[hits[0].period.id], Time(30), Time(50))
        .unwrap();
    assert_eq!(g.start, Time(30));
    s.check_consistency();
}

#[test]
fn start_exactly_on_slot_boundary() {
    let mut s = CoAllocScheduler::new(2, cfg(10, 100, 10));
    let g = s
        .submit(&Request::advance(Time::ZERO, Time(30), Dur(10), 2))
        .unwrap();
    assert_eq!(g.start, Time(30));
    assert_eq!(g.end, Time(40));
    // Adjacent booking ending exactly at 30 fits back-to-back.
    let g2 = s
        .submit(&Request::advance(Time::ZERO, Time(20), Dur(10), 2))
        .unwrap();
    assert_eq!(g2.start, Time(20));
    s.check_consistency();
}

#[test]
fn clock_advance_beyond_entire_horizon() {
    let mut s = CoAllocScheduler::new(3, cfg(10, 100, 10));
    s.submit(&Request::on_demand(Time::ZERO, Dur(50), 3)).unwrap();
    // Jump far past everything ever scheduled: the whole ring recycles.
    s.advance_to(Time(10_000));
    s.check_consistency();
    let g = s
        .submit(&Request::on_demand(Time(10_000), Dur(40), 3))
        .unwrap();
    assert_eq!(g.start, Time(10_000));
}

#[test]
fn release_after_clock_advance_past_history() {
    let mut s = CoAllocScheduler::new(1, cfg(10, 100, 10));
    let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
    // Advance far enough that the reservation is pruned history. Pruning
    // forgets the job entirely (so a snapshot-restored twin agrees), hence
    // releasing the ancient job reports it unknown — and corrupts nothing.
    s.advance_to(Time(500));
    assert!(matches!(
        s.release(g.job),
        Err(ScheduleError::UnknownJob(_))
    ));
    s.check_consistency();
}

#[test]
fn release_of_finished_but_unpruned_job_retires_it() {
    let mut s = CoAllocScheduler::new(1, cfg(10, 100, 10));
    let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
    // Finished (end=20 < now=100) but before the amortized prune threshold:
    // the job is still known and releasable exactly once.
    s.advance_to(Time(100));
    s.release(g.job).unwrap();
    assert!(matches!(
        s.release(g.job),
        Err(ScheduleError::UnknownJob(_))
    ));
    // Its busy seconds still count as completed work.
    assert!(s.utilization(Time(100)) > 0.0);
    s.check_consistency();
}

#[test]
fn many_fragments_stress_one_slot() {
    // 64 tiny alternating reservations inside a single 10_000-second slot.
    let mut s = CoAllocScheduler::new(4, cfg(10_000, 100_000, 10));
    for i in 0..64i64 {
        s.submit(&Request::advance(
            Time::ZERO,
            Time(i * 100),
            Dur(50),
            2,
        ))
        .unwrap();
    }
    s.check_consistency();
    // Every inter-reservation gap is findable.
    for i in 0..64i64 {
        let gap_start = Time(i * 100 + 50);
        let hits = s.range_search(gap_start, gap_start + Dur(50));
        assert!(hits.len() >= 2, "gap {i} lost");
    }
}

#[test]
fn all_servers_requested_repeatedly() {
    let mut s = CoAllocScheduler::new(8, cfg(10, 1000, 10));
    let mut expected_start = 0i64;
    for _ in 0..10 {
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(50), 8)).unwrap();
        assert_eq!(g.start, Time(expected_start));
        expected_start += 50;
    }
    s.check_consistency();
    assert!((s.utilization(Time(500)) - 1.0).abs() < 1e-9);
}

#[test]
fn interleaved_release_and_resubmit_churn() {
    let mut s = CoAllocScheduler::new(4, cfg(10, 500, 10));
    let mut jobs = std::collections::VecDeque::new();
    for round in 0..50i64 {
        if let Ok(g) = s.submit(&Request::advance(
            Time::ZERO,
            Time((round * 37) % 400),
            Dur(30 + (round % 5) * 10),
            1 + (round % 3) as u32,
        )) {
            jobs.push_back(g.job);
        }
        if jobs.len() > 5 {
            let j = jobs.pop_front().unwrap();
            s.release(j).unwrap();
        }
        if round % 10 == 9 {
            s.check_consistency();
        }
    }
    s.check_consistency();
}

#[test]
fn range_count_equals_range_search_len_everywhere() {
    let mut s = CoAllocScheduler::new(5, cfg(10, 300, 10));
    for i in 0..12i64 {
        let _ = s.submit(&Request::advance(
            Time::ZERO,
            Time(i * 20),
            Dur(25),
            1 + (i % 3) as u32,
        ));
    }
    for a in (0..280).step_by(7) {
        for len in [1i64, 10, 40] {
            let (lo, hi) = (Time(a), Time(a + len));
            assert_eq!(
                s.range_count(lo, hi),
                s.range_search(lo, hi).len(),
                "window [{a}, {})",
                a + len
            );
        }
    }
}

#[test]
fn beyond_horizon_request_succeeds_after_clock_advance() {
    let mut s = CoAllocScheduler::new(2, cfg(10, 100, 10));
    // Wants [150, 170): outside today's horizon [0, 100).
    let req = Request::advance(Time::ZERO, Time(150), Dur(20), 2);
    assert!(matches!(
        s.submit(&req),
        Err(ScheduleError::HorizonExceeded { .. })
    ));
    // The user resubmits once the horizon has rolled forward.
    s.advance_to(Time(80));
    let g = s
        .submit(&Request::advance(Time(80), Time(150), Dur(20), 2))
        .unwrap();
    assert_eq!(g.start, Time(150));
    s.check_consistency();
}

#[test]
fn grant_ending_exactly_at_horizon_edge_survives_advance() {
    let mut s = CoAllocScheduler::new(1, cfg(10, 100, 10));
    let g = s
        .submit(&Request::advance(Time::ZERO, Time(90), Dur(10), 1))
        .unwrap();
    assert_eq!(g.end, Time(100));
    // Advancing far keeps the commitment until it expires, then prunes it.
    s.advance_to(Time(95));
    assert!(s.job(g.job).is_some());
    s.check_consistency();
    s.advance_to(Time(500));
    s.check_consistency();
    // History was pruned, and pruning forgets the job: releasing is still
    // safe but reports it unknown (identically on any restored twin).
    assert!(matches!(
        s.release(g.job),
        Err(ScheduleError::UnknownJob(_))
    ));
    s.check_consistency();
}

#[test]
fn range_search_never_returns_unusable_past_windows() {
    let mut s = CoAllocScheduler::new(2, cfg(10, 100, 10));
    s.advance_to(Time(50));
    // A window entirely in the past yields nothing.
    assert!(s.range_search(Time(10), Time(30)).is_empty());
    // A window straddling `now` is clamped: the hit must cover [50, 60).
    let hits = s.range_search(Time(40), Time(60));
    assert_eq!(hits.len(), 2);
    for h in hits {
        assert!(h.period.is_feasible(Time(50), Time(60)));
    }
}

#[test]
fn single_server_system() {
    let mut s = CoAllocScheduler::new(1, cfg(10, 100, 10));
    let g = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
    assert_eq!(g.servers, vec![ServerId(0)]);
    assert!(matches!(
        s.submit(&Request::on_demand(Time::ZERO, Dur(10), 2)),
        Err(ScheduleError::TooManyServers { .. })
    ));
}
