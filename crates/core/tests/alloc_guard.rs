//! Counter-based allocation guard for the scheduler hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase grows every scratch buffer and slab free list, the guard
//! asserts that **steady-state rejected submissions perform zero heap
//! allocations** — both the phase-1 (candidate count) and phase-2
//! (feasibility) rejection paths — and that the grant path stays within a
//! small bounded budget (the returned `Grant::servers` vector plus the
//! per-job reservation record).
//!
//! This is an integration test on purpose: the counting allocator needs
//! `unsafe impl GlobalAlloc`, which the library crate forbids.

use coalloc_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .build()
}

/// One test function: the counter is process-global, so the three
/// measurements must run sequentially, not on parallel test threads.
#[test]
fn steady_state_submissions_do_not_allocate() {
    // ---- Phase-1 rejects: a pinned server makes 8-wide requests uncountable.
    let mut sched = CoAllocScheduler::new(8, cfg());
    sched
        .submit(&Request::on_demand(Time::ZERO, Dur(390), 1))
        .unwrap();

    // Warm-up: grow scratch buffers, the pending-op queue, metric
    // registries, and slab free lists with a mixed grant/reject/release
    // load, including one request identical to each measured shape.
    let mut jobs = Vec::with_capacity(64);
    for i in 0..200i64 {
        let req = Request::advance(
            Time::ZERO,
            Time((i % 30) * 10),
            Dur(10 + (i % 5) * 20),
            1 + (i % 6) as u32,
        );
        if let Ok(g) = sched.submit(&req) {
            jobs.push(g.job);
        }
        if i % 2 == 0 {
            if let Some(j) = jobs.pop() {
                sched.release(j).unwrap();
            }
        }
    }
    for j in jobs.drain(..) {
        sched.release(j).unwrap();
    }
    let probe = Request::on_demand(Time::ZERO, Dur(50), 8);
    assert!(sched.submit(&probe).is_err(), "7 free servers < 8 wanted");

    let before = allocs();
    for _ in 0..100 {
        assert!(sched.submit(&probe).is_err());
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state phase-1 rejections must not allocate"
    );

    // ---- Batched rejects: `submit_batch_into` writes into a caller-owned
    // buffer and folds the same zero-allocation reject path per member, so
    // a steady-state stream of all-reject batches allocates nothing — no
    // per-batch Vec churn.
    let batch: Vec<Request> = vec![probe; 16];
    let mut out = Vec::with_capacity(batch.len());
    sched.submit_batch_into(&batch, &mut out); // warm the out-buffer
    let before = allocs();
    for _ in 0..20 {
        sched.submit_batch_into(&batch, &mut out);
        assert!(out.iter().all(|r| r.is_err()));
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state batched rejections must not allocate"
    );

    // ---- Phase-2 rejects: enough candidates, none feasible. All four
    // servers are busy over [60, 100), so a 310 s job counts 4 candidate
    // periods at every start in its horizon-bounded window but never finds a
    // feasible one (finite periods end at 60 < e_r; the trailing periods
    // start at 100 > every tried start).
    let mut sched2 = CoAllocScheduler::new(4, cfg());
    sched2
        .submit(&Request::advance(Time::ZERO, Time(60), Dur(40), 4))
        .unwrap();
    let long = Request::on_demand(Time::ZERO, Dur(310), 4);
    assert!(matches!(
        sched2.submit(&long),
        Err(ScheduleError::HorizonExceeded { .. })
    ));

    let before = allocs();
    for _ in 0..100 {
        assert!(sched2.submit(&long).is_err());
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state phase-2 rejections must not allocate"
    );

    // ---- Profile-jump rejects: a comb of fully-busy even slots makes the
    // capacity profile refute every Δt-aligned window for a 20 s job, so
    // the retry loop resolves by multi-hop `next_allowed` jumps alone —
    // zero Phase-1 probes — and the whole walk (segment-tree descents
    // included) must be allocation-free.
    let mut sched3 = CoAllocScheduler::new(2, cfg());
    for i in (0..40i64).step_by(2) {
        sched3
            .submit(&Request::advance(Time::ZERO, Time(i * 10), Dur(10), 2))
            .unwrap();
    }
    let comb = Request::on_demand(Time::ZERO, Dur(20), 1);
    let base_attempts = sched3.stats().attempts;
    assert!(matches!(
        sched3.submit(&comb),
        Err(ScheduleError::Exhausted { .. })
    ));
    assert_eq!(
        sched3.stats().attempts,
        base_attempts,
        "every attempt must be jumped, none probed"
    );
    let before = allocs();
    for _ in 0..100 {
        assert!(sched3.submit(&comb).is_err());
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state profile-jump rejections must not allocate"
    );

    // ---- Grant path: bounded, not zero. Each grant returns an owned
    // `Grant::servers` vector and records a per-job reservation list; both
    // are O(n_r) and independent of schedule size. Guard against gross
    // regressions with a generous per-grant budget.
    let warm = sched2.submit(&Request::on_demand(Time::ZERO, Dur(30), 4)).unwrap();
    sched2.release(warm.job).unwrap();
    let iters = 50u64;
    let before = allocs();
    for _ in 0..iters {
        let g = sched2
            .submit(&Request::on_demand(Time::ZERO, Dur(30), 4))
            .unwrap();
        sched2.release(g.job).unwrap();
    }
    let per_grant = (allocs() - before) / iters;
    println!("grant+release allocations per cycle: {per_grant}");
    assert!(
        per_grant <= 32,
        "grant+release cycle allocated {per_grant} times; expected a small bounded number"
    );

    // ---- Batched grant path: scratch is reused across batch members, so
    // each granted member stays within the same per-grant budget.
    let pair = [
        Request::on_demand(Time::ZERO, Dur(30), 2),
        Request::on_demand(Time::ZERO, Dur(30), 2),
    ];
    let mut out = Vec::with_capacity(pair.len());
    sched2.submit_batch_into(&pair, &mut out); // warm
    for r in out.drain(..) {
        sched2.release(r.unwrap().job).unwrap();
    }
    let before = allocs();
    for _ in 0..iters {
        sched2.submit_batch_into(&pair, &mut out);
        for r in out.drain(..) {
            sched2.release(r.unwrap().job).unwrap();
        }
    }
    let per_grant = (allocs() - before) / (iters * pair.len() as u64);
    println!("batched grant+release allocations per member: {per_grant}");
    assert!(
        per_grant <= 32,
        "batched grant+release allocated {per_grant} per member; expected the per-grant budget"
    );
}
