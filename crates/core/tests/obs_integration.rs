//! Integration test: the scheduler emits phase-1/phase-2 spans and metrics
//! for a known request mix (ISSUE 2 satellite).

use coalloc_core::request::Request;
use coalloc_core::scheduler::{CoAllocScheduler, SchedulerConfig};
use coalloc_core::time::{Dur, Time};
use obs::trace::{self, EventKind};

#[test]
fn scheduler_emits_phase_spans_for_known_mix() {
    // This test owns the process-global tracing state; it is the only
    // tracing test in this binary, so no cross-test lock is needed.
    trace::set_enabled(true);
    trace::set_detail(true); // phase spans are detail-level
    trace::set_ring_capacity(4096);
    trace::clear_ring();

    // Linear retry walk: this test counts one phase-1 span per attempted
    // start, and profile jumping exists precisely to skip the probes the
    // middle attempts would have run.
    let mut s = CoAllocScheduler::new(
        4,
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(200))
            .delta_t(Dur(10))
            .jump_retries(false)
            .build(),
    );
    // Known mix: two grants, then an infeasible request (5 > 4 servers is
    // rejected up front; instead overload the window to force retries).
    s.submit(&Request::advance(Time::ZERO, Time(10), Dur(30), 4))
        .expect("first grant");
    s.submit(&Request::advance(Time::ZERO, Time(10), Dur(30), 2))
        .expect("second grant retries past the full window");

    trace::set_enabled(false);
    trace::set_detail(false);
    let events = trace::ring_events();

    let submits: Vec<_> = events
        .iter()
        .filter(|e| e.name == "sched.submit" && e.kind == EventKind::SpanEnd)
        .collect();
    assert_eq!(submits.len(), 2, "one submit span per request");
    for end in &submits {
        assert_eq!(
            end.field("outcome"),
            Some(&trace::Value::Str("granted".into()))
        );
        assert!(end.field("dur_ns").is_some());
    }
    // The second request found slot [10,40) full and retried at least once.
    let attempts = match submits[1].field("attempts") {
        Some(trace::Value::U64(n)) => *n,
        other => panic!("attempts field missing or wrong type: {other:?}"),
    };
    assert!(attempts >= 2, "second request must retry, got {attempts}");

    // Phase spans nest under their submit span and carry the search fields.
    let p1_starts: Vec<_> = events
        .iter()
        .filter(|e| e.name == "sched.phase1" && e.kind == EventKind::SpanStart)
        .collect();
    let p1_ends: Vec<_> = events
        .iter()
        .filter(|e| e.name == "sched.phase1" && e.kind == EventKind::SpanEnd)
        .collect();
    assert!(p1_ends.len() >= 3, "at least one phase-1 per attempt");
    let submit_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "sched.submit" && e.kind == EventKind::SpanStart)
        .map(|e| e.span)
        .collect();
    for p1 in &p1_starts {
        assert!(
            submit_ids.contains(&p1.parent),
            "phase-1 span nests under a submit span"
        );
    }
    for p1 in &p1_ends {
        assert!(p1.field("marked").is_some() || p1.field("trailing").is_some());
    }

    // Phase 2 only runs when phase 1 found enough candidates; with grants
    // happening, it must have run and reported what it retrieved.
    let p2_ends: Vec<_> = events
        .iter()
        .filter(|e| e.name == "sched.phase2" && e.kind == EventKind::SpanEnd)
        .collect();
    assert!(!p2_ends.is_empty(), "phase-2 spans present");
    for p2 in &p2_ends {
        assert!(p2.field("retrieved").is_some());
        assert!(p2.field("visits").is_some());
    }

    // Metrics side: phase counters and the attempts histogram moved.
    let text = obs::metrics::exposition();
    assert!(text.contains("sched_phase1_total"));
    assert!(text.contains("sched_phase2_total"));
    let grants = obs::metrics::counter("sched_grants_total").get();
    assert!(grants >= 2, "grant counter moved: {grants}");
    assert!(obs::metrics::histogram("sched_attempts").count() >= 2);
    trace::clear_ring();
    trace::set_ring_capacity(0);
}
