//! Hostile-input fuzzing for [`CoAllocScheduler::restore`]: the snapshot
//! is the crash-recovery base image of the WAL (DESIGN.md §13), so restore
//! must treat its input as attacker-controlled. Whatever bytes arrive —
//! truncated, reordered, bit-flipped, or pure noise — restore must return
//! `SnapshotError` or a scheduler that passes `check_consistency()`
//! (i.e. no overlapping commitments), and must never panic.

use coalloc_core::prelude::*;
use proptest::prelude::*;

fn fixture(seed: u64, servers: u32, n_jobs: usize) -> CoAllocScheduler {
    let cfg = SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(300))
        .delta_t(Dur(10))
        .policy(SelectionPolicy::ByServerId)
        .seed(seed)
        .build();
    let mut s = CoAllocScheduler::new(servers, cfg);
    for i in 0..n_jobs {
        let dur = Dur(10 + 10 * ((seed as i64 + i as i64) % 4));
        let k = 1 + ((i as u32 + servers) % servers.min(3));
        let _ = s.submit(&Request::on_demand(Time::ZERO, dur, k));
    }
    s
}

/// Either an error or a consistent scheduler; `check_consistency` panics on
/// any overlap or index drift, which is exactly the property under test.
fn must_not_corrupt(input: &str) {
    if let Ok(s) = CoAllocScheduler::restore(input) {
        s.check_consistency();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure noise never panics (and, lacking the magic line, never parses).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..400)) {
        let input = String::from_utf8_lossy(&bytes);
        prop_assert!(CoAllocScheduler::restore(&input).is_err());
    }

    /// Noise *behind* a genuine magic line still never panics.
    #[test]
    fn magic_plus_noise_never_panics(bytes in prop::collection::vec(0u8..=255, 0..400)) {
        let input = format!("coalloc-snapshot v2\n{}", String::from_utf8_lossy(&bytes));
        must_not_corrupt(&input);
        let v1 = format!("coalloc-snapshot v1\n{}", String::from_utf8_lossy(&bytes));
        must_not_corrupt(&v1);
    }

    /// Truncating a genuine snapshot at ANY char boundary is detected.
    #[test]
    fn truncation_always_detected(
        seed in 0u64..1000,
        servers in 1u32..6,
        jobs in 0usize..8,
        cut_fraction in 0.0f64..1.0,
    ) {
        let snap = fixture(seed, servers, jobs).snapshot();
        // Any cut that loses real bytes must be detected; dropping only the
        // trailing '\n' is the one semantically-neutral truncation, so the
        // victim range stops one byte short of it.
        let mut cut = ((snap.len() - 1) as f64 * cut_fraction) as usize;
        while !snap.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(cut < snap.len() - 1);
        prop_assert!(CoAllocScheduler::restore(&snap[..cut]).is_err());
    }

    /// Swapping any two distinct lines of a genuine snapshot is detected.
    #[test]
    fn reorder_always_detected(
        seed in 0u64..1000,
        servers in 2u32..6,
        jobs in 1usize..8,
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let snap = fixture(seed, servers, jobs).snapshot();
        let mut lines: Vec<&str> = snap.lines().collect();
        let a = ((lines.len() - 1) as f64 * a_frac) as usize;
        let b = ((lines.len() - 1) as f64 * b_frac) as usize;
        if lines[a] != lines[b] {
            lines.swap(a, b);
            let mutated: String = lines.iter().map(|l| format!("{l}\n")).collect();
            prop_assert!(CoAllocScheduler::restore(&mutated).is_err());
        }
    }

    /// Flipping any byte of a genuine snapshot is detected (or, if it lands
    /// outside UTF-8, the lossy decode changes bytes and is still detected).
    #[test]
    fn byte_flip_always_detected(
        seed in 0u64..1000,
        servers in 1u32..6,
        jobs in 0usize..8,
        victim_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let snap = fixture(seed, servers, jobs).snapshot();
        // Restrict victims to the hashed region (everything before the
        // footer line): footer bytes themselves admit semantically-neutral
        // rewrites (hex case, equivalent whitespace) that the parser rightly
        // accepts, so they are not "damage" in the sense of this property.
        let footer_len = snap.lines().last().unwrap().len() + 1;
        let hashed_len = snap.len() - footer_len;
        let mut bytes = snap.into_bytes();
        let victim = ((hashed_len - 1) as f64 * victim_frac) as usize;
        bytes[victim] ^= flip;
        let mutated = String::from_utf8_lossy(&bytes);
        prop_assert!(CoAllocScheduler::restore(&mutated).is_err());
    }

    /// Sanity: the unmodified snapshot restores and round-trips exactly.
    #[test]
    fn genuine_snapshots_roundtrip(
        seed in 0u64..1000,
        servers in 1u32..6,
        jobs in 0usize..8,
    ) {
        let snap = fixture(seed, servers, jobs).snapshot();
        let restored = CoAllocScheduler::restore(&snap).unwrap();
        restored.check_consistency();
        prop_assert_eq!(restored.snapshot(), snap);
    }
}
