//! Property-based tests for the core co-allocation invariants.

use coalloc_core::prelude::*;
use proptest::prelude::*;

/// Strategy: a stream of requests with small parameters, fitting a system of
/// `n_servers` servers with tau=10 / horizon=400 slotting.
fn request_stream(n_servers: u32, len: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (
            0i64..200,    // submit offset from previous
            0i64..120,    // advance offset (s_r - q_r)
            1i64..80,     // duration
            1u32..=n_servers,
        ),
        1..len,
    )
    .prop_map(|raw| {
        let mut t = 0i64;
        raw.into_iter()
            .map(|(dt, adv, dur, n)| {
                t += dt % 20; // mostly clustered arrivals
                Request::advance(Time(t), Time(t + adv), Dur(dur), n)
            })
            .collect()
    })
}

fn small_cfg(policy: SelectionPolicy) -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur(10))
        .horizon(Dur(400))
        .delta_t(Dur(10))
        .policy(policy)
        .seed(0xABCD)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tree-based scheduler and the naive linear-scan scheduler make
    /// identical decisions (same grants, same rejections, same start times
    /// and servers) when both use the order-independent ByServerId policy.
    #[test]
    fn tree_scheduler_equals_naive_oracle(reqs in request_stream(6, 40)) {
        let mut tree = CoAllocScheduler::new(6, small_cfg(SelectionPolicy::ByServerId));
        let mut naive = NaiveScheduler::new(6, small_cfg(SelectionPolicy::ByServerId));
        for r in &reqs {
            tree.advance_to(r.submit);
            naive.advance_to(r.submit);
            let a = tree.submit(r);
            let b = naive.submit(r);
            match (a, b) {
                (Ok(ga), Ok(gb)) => {
                    prop_assert_eq!(ga.start, gb.start);
                    prop_assert_eq!(ga.end, gb.end);
                    prop_assert_eq!(ga.attempts, gb.attempts);
                    let mut sa = ga.servers.clone();
                    let mut sb = gb.servers.clone();
                    sa.sort();
                    sb.sort();
                    prop_assert_eq!(sa, sb);
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                (a, b) => prop_assert!(false, "divergence: tree={a:?} naive={b:?}"),
            }
        }
        tree.check_consistency();
    }

    /// Under any request stream and any policy, the scheduler's slot-tree
    /// mirror stays exactly consistent with the authoritative timeline, and
    /// no server is ever double-booked.
    #[test]
    fn mirror_consistency_under_random_streams(
        reqs in request_stream(5, 30),
        policy_idx in 0usize..4,
    ) {
        let policy = [
            SelectionPolicy::PaperOrder,
            SelectionPolicy::BestFit,
            SelectionPolicy::WorstFit,
            SelectionPolicy::ByServerId,
        ][policy_idx];
        let mut s = CoAllocScheduler::new(5, small_cfg(policy));
        for r in &reqs {
            s.advance_to(r.submit);
            let _ = s.submit(r);
        }
        s.check_consistency();
    }

    /// Every grant satisfies the contract: `start >= max(s_r, now)`, the
    /// delay is a multiple of `Delta_t` bounded by `R_max * Delta_t`, the
    /// right number of distinct servers is returned, and the reservation is
    /// recorded on each of them.
    #[test]
    fn grant_contract(reqs in request_stream(4, 30)) {
        let cfg = small_cfg(SelectionPolicy::PaperOrder);
        let r_max = cfg.effective_r_max() as i64;
        let mut s = CoAllocScheduler::new(4, cfg);
        for r in &reqs {
            s.advance_to(r.submit);
            let earliest = r.earliest_start.max(s.now());
            if let Ok(g) = s.submit(r) {
                prop_assert!(g.start >= earliest);
                let delay = (g.start - earliest).secs();
                prop_assert_eq!(delay % cfg.delta_t.secs(), 0);
                prop_assert!(delay <= r_max * cfg.delta_t.secs());
                prop_assert_eq!(g.end, g.start + r.duration);
                let mut servers = g.servers.clone();
                servers.sort();
                servers.dedup();
                prop_assert_eq!(servers.len(), r.servers as usize);
                for srv in &g.servers {
                    let reserved = s
                        .timeline()
                        .reservations(*srv)
                        .iter()
                        .any(|res| res.job == g.job && res.start == g.start && res.end == g.end);
                    prop_assert!(reserved, "missing reservation on {srv:?}");
                }
            }
        }
    }

    /// Releasing every granted job returns the system to a fully idle state:
    /// one open-ended idle period per server and zero utilization ahead.
    #[test]
    fn release_everything_restores_idle_state(reqs in request_stream(4, 25)) {
        let mut s = CoAllocScheduler::new(4, small_cfg(SelectionPolicy::PaperOrder));
        let mut jobs = Vec::new();
        // Submit everything at t=0 (no clock advance, so nothing is pruned).
        for r in &reqs {
            let r0 = Request::advance(Time::ZERO, r.earliest_start.max(Time::ZERO), r.duration, r.servers);
            if let Ok(g) = s.submit(&r0) {
                jobs.push(g.job);
            }
        }
        for j in jobs {
            s.release(j).unwrap();
        }
        s.check_consistency();
        for srv in 0..4 {
            let idle = s.timeline().idle_periods(ServerId(srv));
            prop_assert_eq!(idle.len(), 1);
            prop_assert_eq!(idle[0].start, Time::ZERO);
            prop_assert!(idle[0].end.is_inf());
        }
    }

    /// The read-only range search agrees with a naive scan of the timeline.
    #[test]
    fn range_search_matches_timeline_scan(
        reqs in request_stream(5, 20),
        window_start in 0i64..350,
        window_len in 1i64..80,
    ) {
        let mut s = CoAllocScheduler::new(5, small_cfg(SelectionPolicy::PaperOrder));
        for r in &reqs {
            let _ = s.submit(r); // keep clock at 0 so the window stays valid
        }
        let (a, b) = (Time(window_start), Time(window_start + window_len));
        let hits = s.range_search(a, b);
        let count = s.range_count(a, b);
        prop_assert_eq!(hits.len(), count);
        if b <= s.horizon_end() {
            let mut got: Vec<u64> = hits.iter().map(|h| h.period.id.0).collect();
            got.sort_unstable();
            let mut want = Vec::new();
            for srv in 0..5 {
                for p in s.timeline().idle_periods(ServerId(srv)) {
                    if p.is_feasible(a, b) {
                        want.push(p.id.0);
                    }
                }
            }
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Snapshot/restore round-trips any reachable scheduler state, and the
    /// restored scheduler's commitments match the original's exactly.
    #[test]
    fn snapshot_roundtrips_any_state(reqs in request_stream(4, 25)) {
        let mut s = CoAllocScheduler::new(4, small_cfg(SelectionPolicy::ByServerId));
        for r in &reqs {
            s.advance_to(r.submit);
            let _ = s.submit(r);
        }
        let snap = s.snapshot();
        let restored = CoAllocScheduler::restore(&snap).unwrap();
        restored.check_consistency();
        prop_assert_eq!(restored.snapshot(), snap);
        for srv in 0..4 {
            prop_assert_eq!(
                s.timeline().reservations(ServerId(srv)),
                restored.timeline().reservations(ServerId(srv))
            );
        }
        prop_assert_eq!(s.now(), restored.now());
    }

    /// Advancing the clock in arbitrary increments keeps the ring mirror
    /// consistent and never loses committed future reservations.
    #[test]
    fn clock_advance_preserves_commitments(
        advances in prop::collection::vec(1i64..60, 1..12),
    ) {
        let mut s = CoAllocScheduler::new(3, small_cfg(SelectionPolicy::PaperOrder));
        // Book a far-future reservation.
        let g = s
            .submit(&Request::advance(Time::ZERO, Time(350), Dur(40), 2))
            .unwrap();
        let mut now = 0i64;
        for a in advances {
            now += a;
            if now >= 350 {
                break;
            }
            s.advance_to(Time(now));
            s.check_consistency();
            // The reservation must still be on the books.
            prop_assert!(s.job(g.job).is_some());
            let mut found = 0;
            for srv in 0..3 {
                found += s
                    .timeline()
                    .reservations(ServerId(srv))
                    .iter()
                    .filter(|r| r.job == g.job)
                    .count();
            }
            prop_assert_eq!(found, 2);
        }
    }

    /// The segment-tree stabbing-path query returns exactly the feasible
    /// finite periods that a brute-force per-slot enumeration of the
    /// timeline finds, for every live slot and a spread of window shapes —
    /// the external correctness contract of the canonical decomposition
    /// (DESIGN.md §12).
    #[test]
    fn stabbing_path_matches_per_slot_enumeration(
        reqs in request_stream(5, 30),
        release_mask in prop::collection::vec(0u8..2, 30),
    ) {
        let mut s = CoAllocScheduler::new(5, small_cfg(SelectionPolicy::PaperOrder));
        let mut jobs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            s.advance_to(r.submit);
            if let Ok(g) = s.submit(r) {
                jobs.push(g.job);
            }
            if release_mask[i] == 1 {
                if let Some(j) = jobs.pop() {
                    s.release(j).unwrap();
                }
            }
        }
        s.check_consistency();
        let cfg = s.ring().config();
        let mut stats = OpStats::new();
        let mut stab = coalloc_core::ring::StabMarks::default();
        let mut ids: Vec<PeriodId> = Vec::new();
        for qi in s.ring().first_slot().0..s.ring().end_slot().0 {
            let q = SlotIdx(qi);
            let slot_start = cfg.slot_start(q);
            // Windows starting inside slot q: intra-slot, slot-spanning,
            // and long enough to reach the horizon's tail.
            for (off, len) in [(0i64, 5i64), (3, 40), (7, 170)] {
                let start = slot_start + Dur(off);
                let end = start + Dur(len);
                ids.clear();
                s.ring()
                    .find_feasible_into(q, start, end, usize::MAX, &mut stab, &mut ids, &mut stats);
                let mut got: Vec<u64> = ids.iter().map(|id| id.0).collect();
                got.sort_unstable();
                // Brute force: scan every server's finite idle periods.
                let mut want = Vec::new();
                for srv in 0..5 {
                    for p in s.timeline().idle_periods(ServerId(srv)) {
                        if !p.end.is_inf() && p.is_feasible(start, end) {
                            want.push(p.id.0);
                        }
                    }
                }
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "slot {} window [{:?}, {:?})", qi, start, end);
                // The counting path agrees with the enumeration.
                let finite = s.ring().phase1_candidates_into(q, start, &mut stab, &mut stats);
                let count = if finite == 0 {
                    0
                } else {
                    s.ring().count_feasible(end, &stab, &mut stats)
                };
                prop_assert_eq!(count, want.len());
            }
        }
    }
}
