//! Reservation requests — the paper's four-parameter tuple
//! `r = (q_r, s_r, l_r, n_r)` (Section 2).

use crate::time::{Dur, Time};

/// A co-allocation request.
///
/// * `submit` (`q_r`) — the time the request is submitted;
/// * `earliest_start` (`s_r >= q_r`) — the earliest time the job can start;
///   `s_r > q_r` is an *advance reservation*;
/// * `duration` (`l_r`) — the temporal size (estimated run time);
/// * `servers` (`n_r`) — the spatial size (number of servers required).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request/submission time `q_r`.
    pub submit: Time,
    /// Earliest start time `s_r`.
    pub earliest_start: Time,
    /// Temporal size `l_r`.
    pub duration: Dur,
    /// Spatial size `n_r`.
    pub servers: u32,
}

impl Request {
    /// An on-demand request (`s_r = q_r`), i.e. "start as soon as possible".
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    ///
    /// let now = Request::on_demand(Time::from_hours(1), Dur::from_mins(30), 4);
    /// assert!(!now.is_advance());
    /// let later = Request::advance(
    ///     Time::from_hours(1),  // submitted at t = 1 h ...
    ///     Time::from_hours(24), // ... for a slot tomorrow
    ///     Dur::from_mins(30),
    ///     4,
    /// );
    /// assert!(later.is_advance() && later.validate().is_ok());
    /// ```
    pub fn on_demand(submit: Time, duration: Dur, servers: u32) -> Request {
        Request {
            submit,
            earliest_start: submit,
            duration,
            servers,
        }
    }

    /// An advance reservation (`s_r > q_r` allowed).
    pub fn advance(submit: Time, start: Time, duration: Dur, servers: u32) -> Request {
        Request {
            submit,
            earliest_start: start,
            duration,
            servers,
        }
    }

    /// Requested end time `e_r = s_r + l_r` for the *unshifted* start.
    #[inline]
    pub fn end(&self) -> Time {
        self.earliest_start + self.duration
    }

    /// Whether this request is an advance reservation.
    #[inline]
    pub fn is_advance(&self) -> bool {
        self.earliest_start > self.submit
    }

    /// Validate the structural constraints from Section 2.
    pub fn validate(&self) -> Result<(), RequestError> {
        if self.servers == 0 {
            return Err(RequestError::ZeroServers);
        }
        if self.duration.secs() <= 0 {
            return Err(RequestError::NonPositiveDuration);
        }
        if self.earliest_start < self.submit {
            return Err(RequestError::StartBeforeSubmit);
        }
        Ok(())
    }
}

/// Structural validation failures for a [`Request`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// `n_r = 0`: nothing to allocate.
    ZeroServers,
    /// `l_r <= 0`: reservations must have positive length.
    NonPositiveDuration,
    /// `s_r < q_r`: jobs cannot start before they are submitted.
    StartBeforeSubmit,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ZeroServers => write!(f, "request asks for zero servers"),
            RequestError::NonPositiveDuration => write!(f, "request duration must be positive"),
            RequestError::StartBeforeSubmit => {
                write!(f, "earliest start precedes submission time")
            }
        }
    }
}

impl std::error::Error for RequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_starts_at_submit() {
        let r = Request::on_demand(Time(17), Dur(12), 2);
        assert_eq!(r.earliest_start, Time(17));
        assert_eq!(r.end(), Time(29));
        assert!(!r.is_advance());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn advance_reservation_detected() {
        let r = Request::advance(Time(0), Time(100), Dur(10), 1);
        assert!(r.is_advance());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        assert_eq!(
            Request::on_demand(Time(0), Dur(10), 0).validate(),
            Err(RequestError::ZeroServers)
        );
        assert_eq!(
            Request::on_demand(Time(0), Dur(0), 1).validate(),
            Err(RequestError::NonPositiveDuration)
        );
        assert_eq!(
            Request::advance(Time(10), Time(5), Dur(10), 1).validate(),
            Err(RequestError::StartBeforeSubmit)
        );
    }
}
