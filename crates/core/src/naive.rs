//! The naive sequential co-allocator.
//!
//! "In principle, the required resources may be allocated by sequentially
//! scheduling each resource individually. However, such a solution can be
//! computationally expensive" (Section 1). [`NaiveScheduler`] is that
//! baseline: it keeps only the authoritative [`Timeline`] and, for every
//! scheduling attempt, scans the servers one by one. Its per-attempt cost is
//! `O(N log m)` (`m` = idle periods per server) versus the slotted trees'
//! `O((log N)^2)`.
//!
//! Because it shares the retry loop, selection policies and commit semantics
//! with [`crate::scheduler::CoAllocScheduler`], it doubles as the *oracle*
//! for equivalence testing: with the order-independent `ByServerId` policy,
//! both schedulers must produce identical schedules for identical request
//! streams.

use crate::error::ScheduleError;
use crate::idle::IdlePeriod;
use crate::ids::{JobId, ServerId};

use crate::request::Request;
use crate::scheduler::{Grant, SchedulerConfig};
use crate::stats::OpStats;
use crate::time::Time;
use crate::timeline::{Reservation, Timeline};
use std::collections::HashMap;

/// Sequential linear-scan co-allocator with the same external behaviour as
/// the tree-based scheduler.
#[derive(Clone, Debug)]
pub struct NaiveScheduler {
    cfg: SchedulerConfig,
    now: Time,
    origin: Time,
    timeline: Timeline,
    jobs: HashMap<JobId, Vec<Reservation>>,
    next_job: u64,
    stats: OpStats,
    last_prune: Time,
}

impl NaiveScheduler {
    /// Create a naive scheduler for `num_servers` servers with the clock at
    /// the epoch.
    pub fn new(num_servers: u32, cfg: SchedulerConfig) -> NaiveScheduler {
        NaiveScheduler::starting_at(num_servers, Time::ZERO, cfg)
    }

    /// Create a naive scheduler with the clock at `origin`.
    pub fn starting_at(num_servers: u32, origin: Time, cfg: SchedulerConfig) -> NaiveScheduler {
        assert!(num_servers > 0, "a system needs at least one server");
        NaiveScheduler {
            cfg,
            now: origin,
            origin,
            timeline: Timeline::new(num_servers, origin),
            jobs: HashMap::new(),
            next_job: 0,
            stats: OpStats::new(),
            last_prune: origin,
        }
    }

    /// The scheduler's current clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of servers `N`.
    pub fn num_servers(&self) -> u32 {
        self.timeline.num_servers()
    }

    /// Cumulative operation counters. Scan steps are recorded as
    /// `primary_visits` so totals are comparable with the tree scheduler.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Read-only access to the authoritative timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The (virtual) horizon end: the naive scheduler enforces the same
    /// horizon rule as the tree scheduler so behaviours match.
    pub fn horizon_end(&self) -> Time {
        // Mirror SlotRing: horizon end advances in whole slots.
        let slot_cfg = self.cfg.slot_config();
        let base = slot_cfg.slot_of(self.now);
        slot_cfg.slot_start(crate::time::SlotIdx(base.0 + slot_cfg.num_slots as i64))
    }

    /// System utilization over `[origin, until)`.
    pub fn utilization(&self, until: Time) -> f64 {
        self.timeline.utilization(self.origin, until)
    }

    /// Advance the clock. Mirrors the tree scheduler's amortized history
    /// prune exactly: prune timing is observable (releasing a pruned job
    /// reports `UnknownJob`), so the oracle forgets jobs on the same
    /// cadence — every `PRUNE_EVERY_SLOTS` slot advances, jobs whose
    /// reservations all ended at or before the live window's start.
    /// The timeline keeps its history (there is no memory pressure here),
    /// so utilization accounting is unchanged.
    pub fn advance_to(&mut self, now: Time) {
        if now <= self.now {
            return;
        }
        self.now = now;
        let slot_cfg = self.cfg.slot_config();
        let window_start = slot_cfg.slot_start(slot_cfg.slot_of(now));
        if (window_start - self.last_prune).secs()
            >= crate::scheduler::PRUNE_EVERY_SLOTS * slot_cfg.tau.secs()
        {
            self.jobs.retain(|_, rs| rs.iter().any(|r| r.end > window_start));
            self.last_prune = window_start;
        }
    }

    /// All feasible idle periods for a job occupying `[start, end)`, by
    /// linear scan over the servers.
    pub fn find_all_feasible(&mut self, start: Time, end: Time) -> Vec<IdlePeriod> {
        let mut out = Vec::new();
        for s in 0..self.timeline.num_servers() {
            self.stats.primary_visits += 1;
            if let Some(p) = self.timeline.covering_idle(ServerId(s), start, end) {
                out.push(p);
            }
        }
        out
    }

    /// Handle a request with the same retry loop as the tree scheduler.
    pub fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        req.validate()?;
        if req.servers > self.num_servers() {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers(),
            });
        }
        let earliest = req.earliest_start.max(self.now);
        let r_max = self.cfg.effective_r_max();
        let mut attempts = 0u32;
        let mut start = earliest;
        loop {
            let end = start + req.duration;
            if end > self.horizon_end() {
                return Err(ScheduleError::HorizonExceeded {
                    horizon_end: self.horizon_end(),
                });
            }
            attempts += 1;
            self.stats.attempts += 1;
            let feasible = self.find_all_feasible(start, end);
            if feasible.len() >= req.servers as usize {
                let chosen = self
                    .cfg
                    .policy
                    .select(feasible, req.servers as usize, end);
                return Ok(self.commit(&chosen, start, end, attempts, earliest));
            }
            if attempts > r_max {
                return Err(ScheduleError::Exhausted {
                    attempts,
                    last_tried: start,
                });
            }
            start += self.cfg.delta_t;
        }
    }

    fn commit(
        &mut self,
        chosen: &[IdlePeriod],
        start: Time,
        end: Time,
        attempts: u32,
        earliest: Time,
    ) -> Grant {
        let job = JobId(self.next_job);
        self.next_job += 1;
        let mut servers = Vec::with_capacity(chosen.len());
        let mut reservations = Vec::with_capacity(chosen.len());
        for p in chosen {
            self.timeline.reserve(p.id, job, start, end);
            servers.push(p.server);
            reservations.push(Reservation {
                job,
                server: p.server,
                start,
                end,
            });
        }
        self.jobs.insert(job, reservations);
        Grant {
            job,
            start,
            end,
            servers,
            attempts,
            waiting: start.saturating_since(earliest),
        }
    }

    /// Cancel a committed job.
    pub fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        let reservations = self.jobs.remove(&job).ok_or(ScheduleError::UnknownJob(job))?;
        for r in reservations {
            self.timeline.release(r.server, r.job, r.start, r.end);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SelectionPolicy;
    use crate::time::Dur;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .policy(SelectionPolicy::ByServerId)
            .build()
    }

    #[test]
    fn grants_and_delays_like_the_paper_scheduler() {
        let mut s = NaiveScheduler::new(2, cfg());
        let g1 = s.submit(&Request::on_demand(Time::ZERO, Dur(30), 2)).unwrap();
        assert_eq!(g1.start, Time::ZERO);
        let g2 = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
        assert_eq!(g2.start, Time(30));
        assert_eq!(g2.attempts, 4);
        s.timeline.check_invariants();
    }

    #[test]
    fn by_server_id_picks_lowest_ids() {
        let mut s = NaiveScheduler::new(4, cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 2)).unwrap();
        assert_eq!(g.servers, vec![ServerId(0), ServerId(1)]);
    }

    #[test]
    fn ops_scale_linearly_with_servers() {
        let mut small = NaiveScheduler::new(4, cfg());
        let mut large = NaiveScheduler::new(64, cfg());
        small.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
        large.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
        assert_eq!(small.stats().primary_visits, 4);
        assert_eq!(large.stats().primary_visits, 64);
    }

    #[test]
    fn release_roundtrip() {
        let mut s = NaiveScheduler::new(1, cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(100), 1)).unwrap();
        assert!(s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).is_err());
        s.release(g.job).unwrap();
        assert!(s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).is_ok());
        s.timeline.check_invariants();
    }
}
