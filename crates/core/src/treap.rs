//! Order-statistic treap, generic over the ordering dimension.
//!
//! Two instantiations are used:
//!
//! * keyed by [`EndKey`] (ascending ending time) as the secondary trees
//!   `T_q^e(u)` of the 2-dimensional slot trees (Section 4.1) — supporting
//!   the Phase-2 count/enumeration of periods with `et_i >= e_r`;
//! * keyed by [`StartKey`] (descending starting time) as the global index of
//!   *open-ended trailing* idle periods (see [`crate::trailing`]).
//!
//! Priorities are hash-derived from the stored period id, so treap shapes
//! are deterministic per seed. Nodes live in an arena shared by all the
//! treaps of one owner, which keeps allocation pressure low and lets a
//! rebuild recycle every node it frees.

use crate::idle::{EndKey, StartKey};
use crate::ids::PeriodId;
use crate::stats::OpStats;

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// SplitMix64 — a tiny, high-quality mixer; used to derive heap priorities
/// from period ids so treap shapes are deterministic per seed.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A key a treap can be ordered by. The embedded period id provides both a
/// deterministic priority salt and the payload returned by enumeration.
pub trait TreapKey: Copy + Ord + std::fmt::Debug {
    /// The idle period this key belongs to.
    fn period_id(&self) -> PeriodId;
    /// The smallest key with the same ordering position as `self` but the
    /// minimum id — used to form half-open key ranges.
    fn with_min_id(&self) -> Self;
    /// The successor key of `self` in id-space (for exact-key removal).
    fn with_next_id(&self) -> Self;
}

impl TreapKey for EndKey {
    fn period_id(&self) -> PeriodId {
        self.id
    }
    fn with_min_id(&self) -> Self {
        EndKey {
            end: self.end,
            id: PeriodId(0),
        }
    }
    fn with_next_id(&self) -> Self {
        EndKey {
            end: self.end,
            id: PeriodId(self.id.0 + 1),
        }
    }
}

impl TreapKey for StartKey {
    fn period_id(&self) -> PeriodId {
        self.id
    }
    fn with_min_id(&self) -> Self {
        StartKey {
            start: self.start,
            id: PeriodId(0),
        }
    }
    fn with_next_id(&self) -> Self {
        StartKey {
            start: self.start,
            id: PeriodId(self.id.0 + 1),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Node<K> {
    key: K,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// Arena of treap nodes with a free list.
#[derive(Clone, Debug)]
pub struct TreapArena<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    seed: u64,
}

impl<K: TreapKey> TreapArena<K> {
    /// Create an arena; `seed` perturbs all priorities derived from it.
    pub fn new(seed: u64) -> TreapArena<K> {
        TreapArena {
            nodes: Vec::new(),
            free: Vec::new(),
            seed,
        }
    }

    /// Number of live (allocated, not freed) nodes — for leak tests.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn alloc(&mut self, key: K) -> u32 {
        let prio = splitmix64(key.period_id().0 ^ self.seed);
        let node = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
            size: 1,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn dealloc(&mut self, i: u32) {
        self.free.push(i);
    }

    #[inline]
    fn size(&self, i: u32) -> u32 {
        if i == NIL {
            0
        } else {
            self.nodes[i as usize].size
        }
    }

    #[inline]
    fn pull(&mut self, i: u32) {
        let (l, r) = {
            let n = &self.nodes[i as usize];
            (n.left, n.right)
        };
        self.nodes[i as usize].size = 1 + self.size(l) + self.size(r);
    }

    /// Split by key: returns `(keys < at, keys >= at)`.
    fn split(&mut self, root: u32, at: K, ops: &mut OpStats) -> (u32, u32) {
        if root == NIL {
            return (NIL, NIL);
        }
        ops.update_visits += 1;
        let key = self.nodes[root as usize].key;
        if key < at {
            let right = self.nodes[root as usize].right;
            let (a, b) = self.split(right, at, ops);
            self.nodes[root as usize].right = a;
            self.pull(root);
            (root, b)
        } else {
            let left = self.nodes[root as usize].left;
            let (a, b) = self.split(left, at, ops);
            self.nodes[root as usize].left = b;
            self.pull(root);
            (a, root)
        }
    }

    /// Merge two treaps where every key in `a` precedes every key in `b`.
    fn merge(&mut self, a: u32, b: u32, ops: &mut OpStats) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        ops.update_visits += 1;
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b, ops);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl, ops);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }
}

/// A treap rooted in a shared [`TreapArena`].
#[derive(Clone, Copy, Debug)]
pub struct Treap {
    root: u32,
}

impl Default for Treap {
    fn default() -> Self {
        Treap::new()
    }
}

impl Treap {
    /// An empty treap.
    pub fn new() -> Treap {
        Treap { root: NIL }
    }

    /// Number of keys stored.
    pub fn len<K: TreapKey>(&self, arena: &TreapArena<K>) -> usize {
        arena.size(self.root) as usize
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Insert a key. Keys are unique by construction (the id component is
    /// unique); inserting a duplicate is a logic error upstream and panics in
    /// debug builds.
    pub fn insert<K: TreapKey>(&mut self, arena: &mut TreapArena<K>, key: K, ops: &mut OpStats) {
        debug_assert!(!self.contains(arena, key), "duplicate key {key:?}");
        let node = arena.alloc(key);
        let (a, b) = arena.split(self.root, key, ops);
        let ab = arena.merge(a, node, ops);
        self.root = arena.merge(ab, b, ops);
    }

    /// Remove a key; returns whether it was present.
    pub fn remove<K: TreapKey>(
        &mut self,
        arena: &mut TreapArena<K>,
        key: K,
        ops: &mut OpStats,
    ) -> bool {
        let (a, rest) = arena.split(self.root, key, ops);
        let (hit, b) = arena.split(rest, key.with_next_id(), ops);
        let found = hit != NIL;
        if found {
            debug_assert_eq!(arena.size(hit), 1, "keys are unique");
            arena.dealloc(hit);
        }
        self.root = arena.merge(a, b, ops);
        found
    }

    /// Build a treap from keys in **ascending order** in `O(k)` amortized,
    /// using the classic right-spine construction: each new (maximal) key
    /// is attached after popping spine nodes with smaller priority.
    pub fn from_sorted<K: TreapKey>(
        arena: &mut TreapArena<K>,
        sorted: &[K],
        ops: &mut OpStats,
    ) -> Treap {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "keys sorted+unique");
        let mut spine: Vec<u32> = Vec::new();
        let mut root = NIL;
        for &key in sorted {
            ops.update_visits += 1;
            let node = arena.alloc(key);
            let prio = arena.nodes[node as usize].prio;
            let mut detached = NIL;
            while let Some(&top) = spine.last() {
                if arena.nodes[top as usize].prio < prio {
                    detached = top;
                    spine.pop();
                    ops.update_visits += 1;
                } else {
                    break;
                }
            }
            arena.nodes[node as usize].left = detached;
            match spine.last() {
                Some(&parent) => arena.nodes[parent as usize].right = node,
                None => root = node,
            }
            spine.push(node);
        }
        // Fix sizes bottom-up along the spine structure with one traversal.
        fn pull_all<K: TreapKey>(arena: &mut TreapArena<K>, node: u32) -> u32 {
            if node == NIL {
                return 0;
            }
            let (l, r) = {
                let n = &arena.nodes[node as usize];
                (n.left, n.right)
            };
            let size = 1 + pull_all(arena, l) + pull_all(arena, r);
            arena.nodes[node as usize].size = size;
            size
        }
        pull_all(arena, root);
        Treap { root }
    }

    /// Membership test (mainly for debug assertions and tests).
    pub fn contains<K: TreapKey>(&self, arena: &TreapArena<K>, key: K) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let n = &arena.nodes[cur as usize];
            if key == n.key {
                return true;
            }
            cur = if key < n.key { n.left } else { n.right };
        }
        false
    }

    /// Count of keys `>= floor`, from subtree sizes in `O(log n)`.
    ///
    /// With end keys this is the Phase-2 feasibility count (`et_i >= e_r`);
    /// with descending start keys it is the candidate count
    /// (`st_i <= s_r`).
    pub fn count_ge<K: TreapKey>(
        &self,
        arena: &TreapArena<K>,
        floor: K,
        ops: &mut OpStats,
    ) -> usize {
        let floor = floor.with_min_id();
        let mut cur = self.root;
        let mut count: usize = 0;
        while cur != NIL {
            ops.secondary_visits += 1;
            let n = &arena.nodes[cur as usize];
            if n.key >= floor {
                count += 1 + arena.size(n.right) as usize;
                cur = n.left;
            } else {
                cur = n.right;
            }
        }
        count
    }

    /// Append up to `limit` period ids with keys `>= floor` into `out`, in
    /// ascending key order (the paper's in-order retrieval traversal).
    /// Returns how many were appended.
    pub fn collect_ge<K: TreapKey>(
        &self,
        arena: &TreapArena<K>,
        floor: K,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) -> usize {
        let floor = floor.with_min_id();
        let before = out.len();
        Self::collect_rec(arena, self.root, floor, limit, out, ops);
        out.len() - before
    }

    fn collect_rec<K: TreapKey>(
        arena: &TreapArena<K>,
        node: u32,
        floor: K,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) {
        if node == NIL || out.len() >= limit {
            return;
        }
        ops.secondary_visits += 1;
        let n = arena.nodes[node as usize];
        if n.key >= floor {
            Self::collect_rec(arena, n.left, floor, limit, out, ops);
            if out.len() < limit {
                out.push(n.key.period_id());
            }
            if out.len() < limit {
                Self::collect_rec(arena, n.right, floor, limit, out, ops);
            }
        } else {
            Self::collect_rec(arena, n.right, floor, limit, out, ops);
        }
    }

    /// All keys in ascending order (test helper).
    pub fn keys_in_order<K: TreapKey>(&self, arena: &TreapArena<K>) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len(arena));
        fn rec<K: TreapKey>(arena: &TreapArena<K>, node: u32, out: &mut Vec<K>) {
            if node == NIL {
                return;
            }
            let n = arena.nodes[node as usize];
            rec(arena, n.left, out);
            out.push(n.key);
            rec(arena, n.right, out);
        }
        rec(arena, self.root, &mut out);
        out
    }

    /// Drop every node of this treap back into the arena's free list.
    pub fn clear<K: TreapKey>(&mut self, arena: &mut TreapArena<K>) {
        fn rec<K: TreapKey>(arena: &mut TreapArena<K>, node: u32) {
            if node == NIL {
                return;
            }
            let (l, r) = {
                let n = &arena.nodes[node as usize];
                (n.left, n.right)
            };
            rec(arena, l);
            rec(arena, r);
            arena.dealloc(node);
        }
        rec(arena, self.root);
        self.root = NIL;
    }

    /// Validate heap and BST invariants plus size annotations (test helper).
    #[doc(hidden)]
    pub fn check_invariants<K: TreapKey>(&self, arena: &TreapArena<K>) {
        fn rec<K: TreapKey>(arena: &TreapArena<K>, node: u32) -> u32 {
            if node == NIL {
                return 0;
            }
            let n = arena.nodes[node as usize];
            let ls = rec(arena, n.left);
            let rs = rec(arena, n.right);
            assert_eq!(n.size, 1 + ls + rs, "size annotation");
            if n.left != NIL {
                assert!(arena.nodes[n.left as usize].key < n.key, "BST order left");
                assert!(arena.nodes[n.left as usize].prio <= n.prio, "heap order left");
            }
            if n.right != NIL {
                assert!(arena.nodes[n.right as usize].key > n.key, "BST order right");
                assert!(
                    arena.nodes[n.right as usize].prio <= n.prio,
                    "heap order right"
                );
            }
            n.size
        }
        rec(arena, self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn ekey(end: i64, id: u64) -> EndKey {
        EndKey {
            end: Time(end),
            id: PeriodId(id),
        }
    }

    fn skey(start: i64, id: u64) -> StartKey {
        StartKey {
            start: Time(start),
            id: PeriodId(id),
        }
    }

    fn build(keys: &[(i64, u64)]) -> (TreapArena<EndKey>, Treap, OpStats) {
        let mut arena = TreapArena::new(42);
        let mut t = Treap::new();
        let mut ops = OpStats::new();
        for &(e, i) in keys {
            t.insert(&mut arena, ekey(e, i), &mut ops);
        }
        t.check_invariants(&arena);
        (arena, t, ops)
    }

    #[test]
    fn insert_orders_by_end_time() {
        let (arena, t, _) = build(&[(33, 2), (18, 4), (25, 1), (33, 3)]);
        let ends: Vec<i64> = t.keys_in_order(&arena).iter().map(|k| k.end.0).collect();
        assert_eq!(ends, vec![18, 25, 33, 33]);
        assert_eq!(t.len(&arena), 4);
    }

    #[test]
    fn count_ge_matches_paper_example() {
        // Figure 2: secondary tree of root A stores ends {18, 25, 33, 33}.
        // For the request with e_r = 29, two periods (Y and Z, both ending
        // at 33) are feasible.
        let (arena, t, _) = build(&[(25, 1), (33, 2), (33, 3), (18, 4)]);
        let mut ops = OpStats::new();
        assert_eq!(t.count_ge(&arena, ekey(29, 0), &mut ops), 2);
        assert_eq!(t.count_ge(&arena, ekey(18, 0), &mut ops), 4);
        assert_eq!(t.count_ge(&arena, ekey(34, 0), &mut ops), 0);
        assert!(ops.secondary_visits > 0);
    }

    #[test]
    fn collect_ge_returns_ascending_and_respects_limit() {
        let (arena, t, _) = build(&[(25, 1), (33, 2), (33, 3), (18, 4), (40, 5)]);
        let mut ops = OpStats::new();
        let mut out = Vec::new();
        let n = t.collect_ge(&arena, ekey(26, 0), 2, &mut out, &mut ops);
        assert_eq!(n, 2);
        assert_eq!(out, vec![PeriodId(2), PeriodId(3)]);
        out.clear();
        let n = t.collect_ge(&arena, ekey(26, 0), 10, &mut out, &mut ops);
        assert_eq!(n, 3);
        assert_eq!(out, vec![PeriodId(2), PeriodId(3), PeriodId(5)]);
    }

    #[test]
    fn start_keys_count_candidates_descending() {
        // The trailing-set use case: keys in descending start order;
        // count_ge(floor at s_r) = candidates with st <= s_r.
        let mut arena: TreapArena<StartKey> = TreapArena::new(9);
        let mut t = Treap::new();
        let mut ops = OpStats::new();
        for (s, i) in [(4i64, 1u64), (16, 2), (7, 3), (1, 4)] {
            t.insert(&mut arena, skey(s, i), &mut ops);
        }
        t.check_invariants(&arena);
        // st <= 10: periods starting at 4, 7, 1.
        assert_eq!(t.count_ge(&arena, skey(10, 0), &mut ops), 3);
        assert_eq!(t.count_ge(&arena, skey(0, 0), &mut ops), 0);
        assert_eq!(t.count_ge(&arena, skey(16, 0), &mut ops), 4);
        // Collection returns latest starts first (paper order).
        let mut out = Vec::new();
        t.collect_ge(&arena, skey(10, 0), usize::MAX, &mut out, &mut ops);
        assert_eq!(out, vec![PeriodId(3), PeriodId(1), PeriodId(4)]);
    }

    #[test]
    fn from_sorted_matches_incremental() {
        let keys: Vec<EndKey> = (0..500u64).map(|i| ekey((i * 7 % 97) as i64, i)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        let mut arena_a = TreapArena::new(5);
        let mut ops = OpStats::new();
        let bulk = Treap::from_sorted(&mut arena_a, &sorted, &mut ops);
        bulk.check_invariants(&arena_a);
        let mut arena_b = TreapArena::new(5);
        let mut inc = Treap::new();
        for &k in &keys {
            inc.insert(&mut arena_b, k, &mut ops);
        }
        // Same priorities (hash-derived) → identical shape and contents.
        assert_eq!(bulk.keys_in_order(&arena_a), inc.keys_in_order(&arena_b));
        assert_eq!(bulk.len(&arena_a), 500);
        // Bulk build is usable afterwards.
        let mut bulk = bulk;
        assert!(bulk.remove(&mut arena_a, sorted[250], &mut ops));
        bulk.check_invariants(&arena_a);
    }

    #[test]
    fn from_sorted_empty_and_single() {
        let mut arena: TreapArena<EndKey> = TreapArena::new(1);
        let mut ops = OpStats::new();
        let t = Treap::from_sorted(&mut arena, &[], &mut ops);
        assert!(t.is_empty());
        let t = Treap::from_sorted(&mut arena, &[ekey(5, 1)], &mut ops);
        assert_eq!(t.len(&arena), 1);
        t.check_invariants(&arena);
    }

    #[test]
    fn remove_and_reuse() {
        let (mut arena, mut t, mut ops) = build(&[(10, 1), (20, 2), (30, 3)]);
        assert!(t.remove(&mut arena, ekey(20, 2), &mut ops));
        assert!(!t.remove(&mut arena, ekey(20, 2), &mut ops));
        assert!(!t.remove(&mut arena, ekey(99, 9), &mut ops));
        t.check_invariants(&arena);
        assert_eq!(t.len(&arena), 2);
        assert_eq!(arena.live_nodes(), 2);
        // Freed slot is recycled.
        t.insert(&mut arena, ekey(15, 4), &mut ops);
        assert_eq!(arena.nodes.len(), 3);
    }

    #[test]
    fn clear_releases_all_nodes() {
        let (mut arena, mut t, _) = build(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        t.clear(&mut arena);
        assert!(t.is_empty());
        assert_eq!(arena.live_nodes(), 0);
    }

    #[test]
    fn deterministic_shape_across_builds() {
        let (a1, t1, _) = build(&[(5, 1), (9, 2), (1, 3), (7, 4)]);
        let (a2, t2, _) = build(&[(5, 1), (9, 2), (1, 3), (7, 4)]);
        assert_eq!(t1.keys_in_order(&a1), t2.keys_in_order(&a2));
    }

    #[test]
    fn count_is_consistent_with_collect_under_random_ops() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut arena = TreapArena::new(1);
        let mut t = Treap::new();
        let mut ops = OpStats::new();
        let mut live: Vec<EndKey> = Vec::new();
        for i in 0..2000u64 {
            if live.is_empty() || rng.random_bool(0.6) {
                let k = ekey(rng.random_range(0..500), i);
                t.insert(&mut arena, k, &mut ops);
                live.push(k);
            } else {
                let idx = rng.random_range(0..live.len());
                let k = live.swap_remove(idx);
                assert!(t.remove(&mut arena, k, &mut ops));
            }
            if i % 97 == 0 {
                t.check_invariants(&arena);
                let probe = ekey(rng.random_range(0..500), 0);
                let expected = live.iter().filter(|k| k.end >= probe.end).count();
                assert_eq!(t.count_ge(&arena, probe, &mut ops), expected);
                let mut out = Vec::new();
                t.collect_ge(&arena, probe, usize::MAX, &mut out, &mut ops);
                assert_eq!(out.len(), expected);
            }
        }
        assert_eq!(arena.live_nodes(), live.len());
    }
}
