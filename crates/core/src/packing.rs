//! Packing sub-slot jobs into combined requests.
//!
//! Section 4.1 assumes requests are at least `tau` long and notes that
//! "jobs of size smaller than `tau` may be packed together and submitted
//! through a single request of size at least equal to `tau`". This module
//! implements that packing: small jobs destined for the same earliest start
//! are stacked into *lanes* (server-worth columns of back-to-back jobs) and
//! emitted as one co-allocation request whose duration is the longest lane,
//! padded up to `tau`.
//!
//! After the combined request is granted, [`PackedGroup::placements`] maps
//! each original job onto `(server index within the grant, offset)` so the
//! caller can dispatch the small jobs inside the reserved window.

use crate::request::Request;
use crate::time::{Dur, Time};

/// One small job to be packed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmallJob {
    /// Caller-side identifier.
    pub tag: u64,
    /// Duration (typically `< tau`).
    pub duration: Dur,
    /// Servers needed simultaneously.
    pub servers: u32,
}

/// Where one small job landed inside the packed reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The original job's tag.
    pub tag: u64,
    /// First lane (grant-server index) this job occupies.
    pub first_lane: u32,
    /// Number of lanes (= the job's `servers`).
    pub lanes: u32,
    /// Offset of the job's start from the reservation start.
    pub offset: Dur,
}

/// A set of small jobs packed into one co-allocation request.
#[derive(Clone, Debug)]
pub struct PackedGroup {
    request_duration: Dur,
    request_servers: u32,
    placements: Vec<Placement>,
}

impl PackedGroup {
    /// Pack `jobs` into lanes using first-fit decreasing on duration:
    /// multi-server jobs occupy `servers` adjacent lanes at a common offset;
    /// each lane accumulates back-to-back work. The resulting request is
    /// `max(tau, longest lane)` long and `lanes` wide.
    ///
    /// Returns `None` for an empty job set.
    pub fn pack(jobs: &[SmallJob], tau: Dur) -> Option<PackedGroup> {
        if jobs.is_empty() {
            return None;
        }
        assert!(
            jobs.iter().all(|j| j.duration.secs() > 0 && j.servers > 0),
            "jobs must have positive size"
        );
        let mut order: Vec<&SmallJob> = jobs.iter().collect();
        // Widest-then-longest first packs the awkward pieces early.
        order.sort_by_key(|j| (std::cmp::Reverse(j.servers), std::cmp::Reverse(j.duration)));
        let max_width = order.iter().map(|j| j.servers).max().unwrap();
        // Lane heights (occupied time per lane).
        let mut lanes: Vec<Dur> = vec![Dur::ZERO; max_width as usize];
        let mut placements = Vec::with_capacity(jobs.len());
        for job in order {
            let w = job.servers as usize;
            // Find the window of `w` adjacent lanes whose max height is
            // minimal (first-fit on the flattest shelf), extending the lane
            // set if every existing window would exceed the current tallest
            // lane by more than the job length... keep it simple: consider
            // all existing windows plus one fresh window appended at the
            // end, pick the minimal-resulting-height option.
            let mut best: Option<(usize, Dur)> = None; // (first lane, base height)
            if lanes.len() >= w {
                for i in 0..=(lanes.len() - w) {
                    let base = lanes[i..i + w].iter().copied().max().unwrap();
                    if best.map(|(_, b)| base < b).unwrap_or(true) {
                        best = Some((i, base));
                    }
                }
            }
            // Alternative: open fresh lanes (base height zero) if that beats
            // stacking — bounded so the request never gets absurdly wide.
            let (first, base) = match best {
                Some((i, base)) if base.is_zero() => (i, base),
                // Stack onto the flattest shelf unless that would push the
                // reservation past max(tallest-so-far, tau) — in that case
                // widening is cheaper than lengthening.
                Some((i, base)) => {
                    let tallest = lanes.iter().copied().max().unwrap();
                    if base + job.duration > tallest.max(tau) {
                        let i = lanes.len();
                        lanes.extend(std::iter::repeat_n(Dur::ZERO, w));
                        (i, Dur::ZERO)
                    } else {
                        (i, base)
                    }
                }
                None => {
                    let i = lanes.len();
                    lanes.extend(std::iter::repeat_n(Dur::ZERO, w));
                    (i, Dur::ZERO)
                }
            };
            // Level the window to `base`, then stack the job.
            let top = base + job.duration;
            for lane in &mut lanes[first..first + w] {
                *lane = top;
            }
            placements.push(Placement {
                tag: job.tag,
                first_lane: first as u32,
                lanes: job.servers,
                offset: base,
            });
        }
        let height = lanes.iter().copied().max().unwrap();
        Some(PackedGroup {
            request_duration: if height < tau { tau } else { height },
            request_servers: lanes.len() as u32,
            placements,
        })
    }

    /// The combined request for earliest start `start`, submitted at
    /// `submit`.
    pub fn request(&self, submit: Time, start: Time) -> Request {
        Request::advance(submit, start, self.request_duration, self.request_servers)
    }

    /// Duration of the combined request (`>= tau`).
    pub fn duration(&self) -> Dur {
        self.request_duration
    }

    /// Width of the combined request.
    pub fn servers(&self) -> u32 {
        self.request_servers
    }

    /// Per-job placements inside the reservation.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Validate that no two placements overlap in (lane, time) — test
    /// helper; panics on violation.
    #[doc(hidden)]
    pub fn check_disjoint(&self, jobs: &[SmallJob]) {
        let dur = |tag: u64| {
            jobs.iter()
                .find(|j| j.tag == tag)
                .expect("placement for unknown job")
                .duration
        };
        for (i, a) in self.placements.iter().enumerate() {
            assert!(a.first_lane + a.lanes <= self.request_servers);
            assert!(a.offset + dur(a.tag) <= self.request_duration);
            for b in &self.placements[i + 1..] {
                let lanes_overlap = a.first_lane < b.first_lane + b.lanes
                    && b.first_lane < a.first_lane + a.lanes;
                let time_overlap = a.offset < b.offset + dur(b.tag)
                    && b.offset < a.offset + dur(a.tag);
                assert!(
                    !(lanes_overlap && time_overlap),
                    "placements {a:?} and {b:?} collide"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tag: u64, dur: i64, servers: u32) -> SmallJob {
        SmallJob {
            tag,
            duration: Dur(dur),
            servers,
        }
    }

    #[test]
    fn empty_set_packs_to_none() {
        assert!(PackedGroup::pack(&[], Dur(100)).is_none());
    }

    #[test]
    fn single_small_job_padded_to_tau() {
        let g = PackedGroup::pack(&[job(1, 30, 2)], Dur(100)).unwrap();
        assert_eq!(g.duration(), Dur(100));
        assert_eq!(g.servers(), 2);
        assert_eq!(g.placements().len(), 1);
    }

    #[test]
    fn serial_jobs_stack_back_to_back_in_one_lane() {
        let jobs = [job(1, 40, 1), job(2, 30, 1), job(3, 20, 1)];
        let g = PackedGroup::pack(&jobs, Dur(100)).unwrap();
        g.check_disjoint(&jobs);
        // All fit in one lane (40+30+20 = 90 <= tau).
        assert_eq!(g.servers(), 1);
        assert_eq!(g.duration(), Dur(100));
    }

    #[test]
    fn overflow_opens_a_second_lane() {
        let jobs = [job(1, 80, 1), job(2, 70, 1), job(3, 60, 1)];
        let g = PackedGroup::pack(&jobs, Dur(100)).unwrap();
        g.check_disjoint(&jobs);
        // 210s of serial work cannot fit one 100s lane after padding rules;
        // the packer balances lanes rather than making a 210s reservation.
        assert!(g.servers() >= 2);
        assert!(g.duration() >= Dur(100));
        // Total reserved area is not absurd (within 2x of the work).
        let work: i64 = jobs.iter().map(|j| j.duration.secs()).sum();
        let area = g.duration().secs() * g.servers() as i64;
        assert!(area <= work * 2 + 200, "area {area} for work {work}");
    }

    #[test]
    fn wide_job_occupies_adjacent_lanes() {
        let jobs = [job(1, 50, 3), job(2, 40, 1), job(3, 30, 2)];
        let g = PackedGroup::pack(&jobs, Dur(100)).unwrap();
        g.check_disjoint(&jobs);
        assert!(g.servers() >= 3);
        let p1 = g.placements().iter().find(|p| p.tag == 1).unwrap();
        assert_eq!(p1.lanes, 3);
    }

    #[test]
    fn request_has_combined_shape() {
        let jobs = [job(1, 30, 1), job(2, 30, 1)];
        let g = PackedGroup::pack(&jobs, Dur(100)).unwrap();
        let r = g.request(Time(5), Time(50));
        assert_eq!(r.submit, Time(5));
        assert_eq!(r.earliest_start, Time(50));
        assert_eq!(r.duration, g.duration());
        assert_eq!(r.servers, g.servers());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn packing_never_loses_or_duplicates_jobs() {
        let jobs: Vec<SmallJob> = (0..40)
            .map(|i| job(i, 10 + (i as i64 * 13) % 90, 1 + (i as u32 % 4)))
            .collect();
        let g = PackedGroup::pack(&jobs, Dur(120)).unwrap();
        g.check_disjoint(&jobs);
        let mut tags: Vec<u64> = g.placements().iter().map(|p| p.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn packed_group_schedules_end_to_end() {
        use crate::prelude::*;
        let jobs = [job(1, 200, 2), job(2, 150, 1), job(3, 100, 1)];
        let g = PackedGroup::pack(&jobs, Dur(600)).unwrap();
        let mut s = CoAllocScheduler::new(
            8,
            SchedulerConfig::builder()
                .tau(Dur(600))
                .horizon(Dur(6000))
                .delta_t(Dur(600))
                .build(),
        );
        let grant = s.submit(&g.request(Time::ZERO, Time::ZERO)).unwrap();
        assert_eq!(grant.servers.len() as u32, g.servers());
        // Each placement maps into the granted window.
        for p in g.placements() {
            let job_dur = jobs.iter().find(|j| j.tag == p.tag).unwrap().duration;
            assert!(grant.start + p.offset + job_dur <= grant.end);
        }
        s.check_consistency();
    }
}
