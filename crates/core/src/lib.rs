//! # coalloc-core
//!
//! Online resource co-allocation with advance reservations, reproducing
//! Castillo, Rouskas & Harfoush, *"Resource Co-Allocation for Large-Scale
//! Distributed Environments"*, HPDC 2009.
//!
//! The crate provides:
//!
//! * the **slotted 2-dimensional tree** index over idle periods
//!   ([`primary::SlotTree`], [`ring::SlotRing`]) — the paper's core data
//!   structure (Section 4.1);
//! * the **online co-allocation scheduler** ([`scheduler::CoAllocScheduler`])
//!   implementing the two-phase search with `Delta_t`/`R_max` retries
//!   (Section 4.2);
//! * **range searches** ([`range_search`]) — query-then-commit resource
//!   discovery over a time window;
//! * a **naive linear-scan co-allocator** ([`naive::NaiveScheduler`]) — the
//!   sequential baseline the paper argues against, doubling as a test oracle;
//! * the supporting substrate: time/slot arithmetic ([`time`]), idle-period
//!   bookkeeping ([`idle`], [`timeline`]) and operation accounting
//!   ([`stats`]).
//!
//! ## Example
//!
//! ```
//! use coalloc_core::prelude::*;
//!
//! // 4 servers, 15-minute slots, 2-day horizon (the paper's Section 5
//! // settings, scaled down).
//! let cfg = SchedulerConfig::builder()
//!     .tau(Dur::from_mins(15))
//!     .horizon(Dur::from_hours(48))
//!     .build();
//! let mut sched = CoAllocScheduler::new(4, cfg);
//!
//! // Co-allocate 2 servers for one hour starting now; the scheduler
//! // shifts by Delta_t (up to R_max times) if the window is contended.
//! let grant = sched
//!     .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 2))
//!     .unwrap();
//! assert_eq!(grant.servers.len(), 2);
//!
//! // Range search: everything free for a whole window, without committing.
//! let free = sched.range_search(Time(600), Time(1800));
//! assert_eq!(free.len(), 2); // the other two servers
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attrs;
pub mod error;
pub mod idle;
pub mod ids;
pub mod naive;
pub mod packing;
pub mod policy;
pub mod primary;
pub mod profile;
pub mod range_search;
pub mod request;
pub mod ring;
pub mod scheduler;
pub mod scratch;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trailing;
pub mod treap;

/// Convenient re-exports of the public API surface.
pub mod prelude {
    pub use crate::attrs::AttrSet;
    pub use crate::error::ScheduleError;
    pub use crate::idle::IdlePeriod;
    pub use crate::ids::{JobId, PeriodId, ServerId};
    pub use crate::naive::NaiveScheduler;
    pub use crate::packing::{PackedGroup, Placement, SmallJob};
    pub use crate::policy::SelectionPolicy;
    pub use crate::profile::FreeProfile;
    pub use crate::range_search::Availability;
    pub use crate::request::{Request, RequestError};
    pub use crate::scheduler::{CoAllocScheduler, Grant, SchedulerConfig};
    pub use crate::scratch::Scratch;
    pub use crate::stats::OpStats;
    pub use crate::time::{Dur, SlotConfig, SlotIdx, Time};
    pub use crate::timeline::{PeriodDelta, Reservation, Timeline};
}
