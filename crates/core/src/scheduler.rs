//! The online co-allocation scheduler (Section 4.2).
//!
//! [`CoAllocScheduler`] is the scheduler `S` of the paper: it maintains the
//! slotted 2-dimensional trees over every server's idle periods, and handles
//! each request `r = (q_r, s_r, l_r, n_r)` immediately on arrival:
//!
//! 1. try to find `n_r` feasible idle periods for `[s_r, s_r + l_r)` via the
//!    two-phase tree search;
//! 2. on failure, retry with the start shifted by `Delta_t`, up to `R_max`
//!    attempts;
//! 3. on success, commit: reserve the window on the chosen servers and
//!    mirror the idle-period fragments into the slot trees.

use crate::attrs::AttrSet;
use crate::error::ScheduleError;
use crate::idle::IdlePeriod;
use crate::ids::{JobId, ServerId};
use crate::policy::SelectionPolicy;
use crate::profile::FreeProfile;
use crate::request::Request;
use crate::ring::SlotRing;
use crate::scratch::Scratch;
use crate::stats::OpStats;
use crate::time::{Dur, SlotConfig, Time};
use crate::timeline::{PeriodDelta, Reservation, Timeline};
use crate::trailing::TrailingSet;
use obs::{obs_span, obs_span_detail, LazyCounter, LazyHistogram};
use std::collections::HashMap;

/// Slot advances between history prunes (amortizes the O(N) prune scan).
/// Public because prune timing is observable through
/// [`CoAllocScheduler::release`] (pruned jobs report `UnknownJob`): the
/// naive oracle and the sharded front-end must forget jobs on exactly the
/// same cadence to stay decision-identical.
pub const PRUNE_EVERY_SLOTS: i64 = 32;

// Scheduler metrics. Counters and histograms are process-global (the
// scheduler itself is Clone, so they aggregate over every instance);
// per-instance numbers remain available via [`CoAllocScheduler::stats`].
// Tree-op counters are bulk-added once per request from the OpStats delta,
// never per node visit, keeping the hot-path cost to a handful of relaxed
// atomic adds per request.
static REQUESTS: LazyCounter = LazyCounter::new("sched_requests_total");
static GRANTS: LazyCounter = LazyCounter::new("sched_grants_total");
static REJECTS: LazyCounter = LazyCounter::new("sched_rejects_total");
static ATTEMPTS_HIST: LazyHistogram = LazyHistogram::new("sched_attempts");
static RETRIES_SKIPPED: LazyCounter = LazyCounter::new("sched_retries_skipped_total");
static ATTEMPTS_JUMPED: LazyCounter = LazyCounter::new("sched_attempts_jumped_total");
static PHASE1_TOTAL: LazyCounter = LazyCounter::new("sched_phase1_total");
static PHASE2_TOTAL: LazyCounter = LazyCounter::new("sched_phase2_total");
static PHASE1_CANDIDATES: LazyHistogram = LazyHistogram::new("sched_phase1_candidates");
static PHASE2_DEPTH: LazyHistogram = LazyHistogram::new("sched_phase2_depth");
static PRIMARY_VISITS: LazyCounter = LazyCounter::new("tree_primary_visits_total");
static SECONDARY_VISITS: LazyCounter = LazyCounter::new("tree_secondary_visits_total");
static UPDATE_VISITS: LazyCounter = LazyCounter::new("tree_update_visits_total");
static REBUILDS: LazyCounter = LazyCounter::new("tree_rebuilds_total");

/// Fold the per-request [`OpStats`] delta into the global metric counters
/// (one atomic add per non-zero counter).
fn record_op_delta(delta: &OpStats) {
    if delta.primary_visits > 0 {
        PRIMARY_VISITS.add(delta.primary_visits);
    }
    if delta.secondary_visits > 0 {
        SECONDARY_VISITS.add(delta.secondary_visits);
    }
    if delta.update_visits > 0 {
        UPDATE_VISITS.add(delta.update_visits);
    }
    if delta.rebuilds > 0 {
        REBUILDS.add(delta.rebuilds);
    }
    PHASE1_TOTAL.add(delta.phase1_searches);
    PHASE2_TOTAL.add(delta.phase2_searches);
}

/// Charge `n` profile-jumped attempts to the global
/// `sched_attempts_jumped_total` counter. Exposed for front-ends (the
/// sharded coordinator) that run their own jump accounting but share the
/// process-global metrics.
pub fn record_attempts_jumped(n: u64) {
    if n > 0 {
        ATTEMPTS_JUMPED.add(n);
    }
}

/// Configuration of a [`CoAllocScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Slot width `tau` (also the recommended minimum request duration).
    pub tau: Dur,
    /// Scheduling horizon `H`; the ring keeps `Q = ceil(H / tau)` trees.
    pub horizon: Dur,
    /// Start-time increment between scheduling attempts (`Delta_t`).
    pub delta_t: Dur,
    /// Maximum number of scheduling attempts (`R_max`). `None` uses the
    /// paper's evaluation default `Q / 2`.
    pub r_max: Option<u32>,
    /// Which feasible periods to allocate.
    pub policy: SelectionPolicy,
    /// RNG seed for deterministic tree shapes.
    pub seed: u64,
    /// Defer index maintenance off the grant path (Section 4.2: "this
    /// update process may be implemented in the background to minimize its
    /// impact on the performance of the scheduler"). Pending deltas are
    /// flushed before the next search touches the indexes, so results are
    /// always consistent; only the latency profile changes.
    pub deferred_updates: bool,
    /// Jump the retry loop past attempts the free-capacity profile proves
    /// infeasible (see [`crate::profile`] and DESIGN.md §14). Decisions —
    /// grants, `attempts` counts, error replies — are identical either
    /// way; only the `attempts` / `attempts_skipped` accounting split and
    /// the `sched_attempts` histogram observe which starts were actually
    /// probed. Disable to force the linear `Delta_t` walk (the bench
    /// baseline and the lockstep-equivalence test oracle).
    pub jump_retries: bool,
}

impl Default for SchedulerConfig {
    /// The paper's evaluation settings: 15-minute `Delta_t`, `R_max = Q/2`,
    /// paper-order selection; one-week horizon with `tau = Delta_t`.
    fn default() -> Self {
        SchedulerConfig {
            tau: Dur::from_mins(15),
            horizon: Dur::from_hours(24 * 7),
            delta_t: Dur::from_mins(15),
            r_max: None,
            policy: SelectionPolicy::PaperOrder,
            seed: 0x5EED,
            deferred_updates: false,
            jump_retries: true,
        }
    }
}

impl SchedulerConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder(SchedulerConfig::default())
    }

    /// The derived slot geometry.
    pub fn slot_config(&self) -> SlotConfig {
        SlotConfig::new(self.tau, self.horizon)
    }

    /// Effective `R_max`: the configured value or the paper default `Q / 2`.
    pub fn effective_r_max(&self) -> u32 {
        self.r_max
            .unwrap_or_else(|| (self.slot_config().num_slots / 2) as u32)
    }
}

/// Builder for [`SchedulerConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfigBuilder(SchedulerConfig);

impl SchedulerConfigBuilder {
    /// Set the slot width `tau`.
    pub fn tau(mut self, tau: Dur) -> Self {
        self.0.tau = tau;
        self
    }
    /// Set the horizon `H`.
    pub fn horizon(mut self, horizon: Dur) -> Self {
        self.0.horizon = horizon;
        self
    }
    /// Set the retry increment `Delta_t`.
    pub fn delta_t(mut self, delta_t: Dur) -> Self {
        self.0.delta_t = delta_t;
        self
    }
    /// Set `R_max` explicitly.
    pub fn r_max(mut self, r_max: u32) -> Self {
        self.0.r_max = Some(r_max);
        self
    }
    /// Set the selection policy.
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.0.policy = policy;
        self
    }
    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }
    /// Defer index maintenance off the grant path (see
    /// [`SchedulerConfig::deferred_updates`]).
    pub fn deferred_updates(mut self, deferred: bool) -> Self {
        self.0.deferred_updates = deferred;
        self
    }
    /// Enable or disable profile-driven retry jumping (see
    /// [`SchedulerConfig::jump_retries`]).
    pub fn jump_retries(mut self, jump: bool) -> Self {
        self.0.jump_retries = jump;
        self
    }
    /// Finish building.
    pub fn build(self) -> SchedulerConfig {
        assert!(self.0.delta_t.secs() > 0, "Delta_t must be positive");
        self.0
    }
}

/// A successful co-allocation: `n_r` servers reserved for `[start, end)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grant {
    /// Identifier of the committed job.
    pub job: JobId,
    /// Actual start time (may exceed `s_r` by a multiple of `Delta_t`).
    pub start: Time,
    /// End of the reservation.
    pub end: Time,
    /// The servers allocated, in allocation order.
    pub servers: Vec<ServerId>,
    /// Scheduling attempts used (1 = succeeded at `s_r`).
    pub attempts: u32,
    /// Waiting time `W_r = start - s_r` introduced by the scheduler.
    pub waiting: Dur,
}

/// A single queued index update (deferred mode). Deltas are flattened into
/// these ops so the pending queue is one flat `Vec` whose capacity is reused
/// across flushes instead of a `Vec` of freshly allocated `PeriodDelta`s.
#[derive(Clone, Copy, Debug)]
enum PendingOp {
    /// Remove this idle period from the indexes.
    Remove(IdlePeriod),
    /// Insert this idle period into the indexes.
    Add(IdlePeriod),
}

/// The online co-allocation scheduler.
#[derive(Clone, Debug)]
pub struct CoAllocScheduler {
    cfg: SchedulerConfig,
    slot_cfg: SlotConfig,
    now: Time,
    origin: Time,
    timeline: Timeline,
    ring: SlotRing,
    trailing: TrailingSet,
    attrs: Vec<AttrSet>,
    jobs: HashMap<JobId, Vec<Reservation>>,
    next_job: u64,
    /// Aggregate busy-count index driving the retry-jump fast reject;
    /// maintained from the same commit/release flow as the ring.
    profile: FreeProfile,
    stats: OpStats,
    /// Reusable buffers for the per-request hot path.
    scratch: Scratch,
    /// Index updates committed but not yet applied (deferred mode).
    pending: Vec<PendingOp>,
    /// Window start at the last history prune.
    last_prune: Time,
}

impl CoAllocScheduler {
    /// Create a scheduler for `num_servers` servers, with the clock at the
    /// epoch.
    pub fn new(num_servers: u32, cfg: SchedulerConfig) -> CoAllocScheduler {
        CoAllocScheduler::starting_at(num_servers, Time::ZERO, cfg)
    }

    /// Create a scheduler with the clock at `origin`.
    pub fn starting_at(num_servers: u32, origin: Time, cfg: SchedulerConfig) -> CoAllocScheduler {
        assert!(num_servers > 0, "a system needs at least one server");
        let slot_cfg = cfg.slot_config();
        let timeline = Timeline::new(num_servers, origin);
        let mut stats = OpStats::new();
        let ring = SlotRing::new(slot_cfg, origin, cfg.seed);
        let mut trailing = TrailingSet::new(cfg.seed);
        for srv in 0..num_servers {
            let p = timeline.trailing_period(ServerId(srv));
            trailing.insert(&p, &mut stats);
        }
        CoAllocScheduler {
            cfg,
            slot_cfg,
            now: origin,
            origin,
            timeline,
            ring,
            trailing,
            attrs: vec![AttrSet::NONE; num_servers as usize],
            jobs: HashMap::new(),
            next_job: 0,
            profile: FreeProfile::new(slot_cfg, num_servers, origin),
            stats,
            scratch: Scratch::new(),
            pending: Vec::new(),
            last_prune: origin,
        }
    }

    /// The scheduler's current clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of servers `N`.
    pub fn num_servers(&self) -> u32 {
        self.timeline.num_servers()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// End of the current scheduling horizon.
    pub fn horizon_end(&self) -> Time {
        self.ring.horizon_end()
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Read-only access to the authoritative timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Read-only access to the slot ring (for diagnostics and tests).
    pub fn ring(&self) -> &SlotRing {
        &self.ring
    }

    /// Read-only access to the free-capacity profile (for diagnostics,
    /// tests, and the fast rejects in [`crate::range_search`]).
    pub fn capacity_profile(&self) -> &FreeProfile {
        &self.profile
    }

    /// Committed reservations of a job, if it exists.
    pub fn job(&self, job: JobId) -> Option<&[Reservation]> {
        self.jobs.get(&job).map(|v| v.as_slice())
    }

    /// System utilization over `[origin, until)`.
    pub fn utilization(&self, until: Time) -> f64 {
        self.timeline.utilization(self.origin, until)
    }

    /// Advance the clock: discard expired slot trees, seed new edge trees,
    /// and prune dead history. Time never moves backwards.
    pub fn advance_to(&mut self, now: Time) {
        if now <= self.now {
            return;
        }
        self.now = now;
        self.ring
            .advance_to_with(now, &mut self.scratch, &mut self.stats);
        self.profile.advance_to(now);
        // History pruning scans every server, so amortize it over many slot
        // advances; the ring's own discard/create stays O(1) per slot as
        // the paper claims. Correctness does not depend on prune timing —
        // stale history is merely unreferenced memory.
        let window_start = self.ring.window_start();
        if (window_start - self.last_prune).secs()
            >= PRUNE_EVERY_SLOTS * self.slot_cfg.tau.secs()
        {
            self.timeline.prune_before(window_start);
            // Jobs whose reservations all fell to the prune are forgotten
            // too: after this, `release` answers `UnknownJob` for them on
            // the original and on any snapshot-restored twin alike —
            // snapshots carry exactly the timeline's (unpruned) busy set,
            // so the jobs map must not outlive it.
            self.jobs.retain(|_, rs| rs.iter().any(|r| r.end > window_start));
            self.last_prune = window_start;
        }
    }

    /// History boundary of the last amortized prune (snapshot state: prune
    /// timing is observable through [`Self::release`], so a restored
    /// scheduler must resume the same prune cadence).
    pub(crate) fn last_prune(&self) -> Time {
        self.last_prune
    }

    pub(crate) fn set_last_prune(&mut self, t: Time) {
        self.last_prune = t;
    }

    /// Replace the timeline and rebuild both search indexes from explicit,
    /// caller-validated parts (the id-faithful restore path): period ids
    /// and the id counter are installed verbatim, so Phase-2 retrieval
    /// order under a result limit — and therefore every future decision —
    /// is bit-identical to the scheduler that wrote the snapshot.
    pub(crate) fn install_state(
        &mut self,
        idle: Vec<IdlePeriod>,
        busy: Vec<Reservation>,
        next_period: u64,
    ) {
        self.timeline = Timeline::from_parts(self.num_servers(), &idle, &busy, next_period);
        self.ring = SlotRing::new(self.slot_cfg, self.origin, self.cfg.seed);
        self.ring.advance_to(self.now, &mut self.stats);
        self.trailing = TrailingSet::new(self.cfg.seed);
        self.pending.clear();
        for p in &idle {
            self.add_to_indexes(p);
        }
        self.jobs.clear();
        self.profile.reset(self.now);
        for r in busy {
            self.profile.add(r.start, r.end, 1);
            self.jobs.entry(r.job).or_default().push(r);
        }
    }

    /// Handle a request: the full online algorithm of Section 4.2, including
    /// the `Delta_t` / `R_max` retry loop. On success the reservation is
    /// committed and a [`Grant`] returned.
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    ///
    /// let mut sched = CoAllocScheduler::new(4, SchedulerConfig::default());
    /// let grant = sched
    ///     .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 2))
    ///     .unwrap();
    /// assert_eq!(grant.servers.len(), 2);
    /// assert_eq!(grant.start, Time::ZERO); // idle system: no waiting
    /// ```
    pub fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        req.validate()?;
        if req.servers > self.num_servers() {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers(),
            });
        }
        // Jobs cannot start in the past; on-demand requests start "now".
        let earliest = req.earliest_start.max(self.now);
        let r_max = self.cfg.effective_r_max();
        REQUESTS.inc();
        let before = self.stats;
        let mut span = obs_span!(
            "sched.submit",
            "servers" => req.servers,
            "duration_s" => req.duration.secs().max(0) as u64,
            "earliest_s" => earliest.secs()
        );
        let (result, probed) = self.search_loop(req, earliest, r_max as u64 + 1);
        ATTEMPTS_HIST.observe(probed as u64);
        record_op_delta(&self.stats.since(&before));
        match &result {
            Ok(grant) => {
                GRANTS.inc();
                if span.active() {
                    span.record("outcome", "granted");
                    span.record("attempts", grant.attempts);
                    span.record("start_s", grant.start.secs());
                }
            }
            Err(e) => {
                REJECTS.inc();
                if span.active() {
                    span.record("outcome", "rejected");
                    span.record("attempts", probed);
                    span.record("error", format!("{e:?}"));
                }
            }
        }
        result
    }

    /// The `Delta_t` / `R_max` retry loop shared by [`Self::submit`] and
    /// [`Self::submit_with_deadline`], with two layered short-circuits:
    ///
    /// * the horizon cap (PR 3): starts whose shifted end falls past the
    ///   horizon can never succeed, so at most `tries` of the `budget`
    ///   attempts are considered at all;
    /// * profile jumping (when [`SchedulerConfig::jump_retries`] is on):
    ///   within those `tries`, attempt indexes whose window the capacity
    ///   profile proves infeasible are skipped without a tree search.
    ///
    /// Both kinds of skipped attempt flow into `attempts_skipped` /
    /// `sched_retries_skipped_total`; profile jumps are additionally broken
    /// out in `attempts_jumped` / `sched_attempts_jumped_total`. Decision
    /// outputs — the grant (including its `attempts` field, which reports
    /// the 1-based index of the successful start), the error variant, and
    /// both `Exhausted` fields — are computed from attempt *indexes*, so
    /// they are identical whether or not jumping is enabled.
    ///
    /// Returns the result plus the number of starts actually probed (what
    /// the `sched_attempts` histogram observes).
    fn search_loop(
        &mut self,
        req: &Request,
        earliest: Time,
        budget: u64,
    ) -> (Result<Grant, ScheduleError>, u32) {
        let horizon_end = self.ring.horizon_end();
        let horizon_attempts = if earliest + req.duration > horizon_end {
            0
        } else {
            ((horizon_end - req.duration - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1
        };
        let tries = budget.min(horizon_attempts);
        let jump = self.cfg.jump_retries;
        let mut probed = 0u64; // starts actually searched
        let mut jumped = 0u64; // starts the profile disproved
        let mut k = 0u64; // next attempt index to consider
        let result = loop {
            let next = if k >= tries {
                None
            } else if jump {
                self.profile.next_allowed(
                    earliest,
                    self.cfg.delta_t,
                    req.duration,
                    req.servers,
                    k,
                    tries,
                )
            } else {
                Some(k)
            };
            let Some(kk) = next else {
                jumped += tries - k;
                let skipped = (budget - tries) + jumped;
                if skipped > 0 {
                    self.stats.attempts_skipped += skipped;
                    RETRIES_SKIPPED.add(skipped);
                }
                if jumped > 0 {
                    self.stats.attempts_jumped += jumped;
                    ATTEMPTS_JUMPED.add(jumped);
                }
                break if horizon_attempts < budget {
                    Err(ScheduleError::HorizonExceeded { horizon_end })
                } else {
                    Err(ScheduleError::Exhausted {
                        attempts: tries as u32,
                        last_tried: earliest + self.cfg.delta_t * (tries as i64 - 1),
                    })
                };
            };
            jumped += kk - k;
            k = kk;
            let start = earliest + self.cfg.delta_t * (k as i64);
            let end = start + req.duration;
            probed += 1;
            self.stats.attempts += 1;
            if self.try_once(start, end, req.servers) {
                let chosen = std::mem::take(&mut self.scratch.feasible);
                let grant = self.commit(&chosen, start, end, (k + 1) as u32, earliest);
                self.scratch.feasible = chosen;
                if jumped > 0 {
                    self.stats.attempts_skipped += jumped;
                    RETRIES_SKIPPED.add(jumped);
                    self.stats.attempts_jumped += jumped;
                    ATTEMPTS_JUMPED.add(jumped);
                }
                break Ok(grant);
            }
            k += 1;
        };
        (result, probed as u32)
    }

    /// Handle a batch of requests in submission order.
    ///
    /// This is the *reference semantics* for every batch API in the
    /// workspace: a batch is nothing more than its members submitted
    /// sequentially against the current clock — member `i` observes the
    /// commits of members `0..i` and the replies come back in order. The
    /// sharded scheduler's `submit_batch` amortizes coordination over the
    /// batch but is bit-identical to this loop (see DESIGN.md §9).
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Grant, ScheduleError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    /// [`Self::submit_batch`] writing into a caller-owned buffer (cleared
    /// first), so a steady-state stream of all-reject batches performs no
    /// heap allocation once the buffer's capacity has warmed up.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Grant, ScheduleError>>,
    ) {
        out.clear();
        out.reserve(reqs.len());
        for req in reqs {
            out.push(self.submit(req));
        }
    }

    /// One scheduling attempt at a fixed start time: Phase 1 + Phase 2 +
    /// policy selection. On success returns `true` with the chosen periods
    /// (exactly `n` of them) left in `self.scratch.feasible`.
    ///
    /// Candidates come from two places: the canonical slot trees on the
    /// stabbing path of the slot containing `start` (finite periods) and
    /// the global trailing index (open-ended periods, which are candidates
    /// iff `st <= start` and then feasible for any end). All working
    /// storage lives in [`Scratch`], so a steady-state attempt performs no
    /// heap allocation.
    fn try_once(&mut self, start: Time, end: Time, n: u32) -> bool {
        self.flush_updates();
        let n = n as usize;
        let q = self.slot_cfg.slot_of(start);
        // Phase 1: count candidates via subtree sizes along the stabbing
        // path. The count may include benign aliases (see DESIGN.md §12);
        // they never survive Phase 2, so the early exit below reaches the
        // same decision as exact per-slot counting.
        let p1_visits = self.stats.primary_visits;
        let mut p1_span = obs_span_detail!("sched.phase1", "start_s" => start.secs(), "need" => n);
        let trailing_count = self.trailing.count_candidates(start, &mut self.stats);
        let finite_count =
            self.ring
                .phase1_candidates_into(q, start, &mut self.scratch.stab, &mut self.stats);
        PHASE1_CANDIDATES.observe((trailing_count + finite_count) as u64);
        if p1_span.active() {
            p1_span.record("trailing", trailing_count);
            p1_span.record("marked", finite_count);
            p1_span.record("visits", self.stats.primary_visits - p1_visits);
        }
        drop(p1_span);
        if trailing_count + finite_count < n {
            return false;
        }
        // Phase 2: enumerate the full feasible set. Every policy then sorts
        // by a total key, so the selection is deterministic regardless of the
        // tree shape (and identical under any sharded partition of the
        // servers). Trailing candidates (feasible for any end) come first.
        let p2_visits = self.stats.secondary_visits;
        let mut p2_span = obs_span_detail!("sched.phase2", "end_s" => end.secs(), "need" => n);
        self.scratch.ids.clear();
        self.trailing
            .collect_candidates(start, usize::MAX, &mut self.scratch.ids, &mut self.stats);
        self.ring.phase2_feasible_into(
            end,
            &self.scratch.stab,
            usize::MAX,
            &mut self.scratch.ids,
            &mut self.stats,
        );
        let depth = self.stats.secondary_visits - p2_visits;
        PHASE2_DEPTH.observe(depth);
        if p2_span.active() {
            p2_span.record("retrieved", self.scratch.ids.len());
            p2_span.record("visits", depth);
        }
        drop(p2_span);
        if self.scratch.ids.len() < n {
            return false;
        }
        self.scratch.feasible.clear();
        for id in &self.scratch.ids {
            self.scratch.feasible.push(
                *self
                    .timeline
                    .period(*id)
                    .expect("slot tree refers to live period"),
            );
        }
        self.cfg
            .policy
            .select_in_place(&mut self.scratch.feasible, n, end);
        debug_assert_eq!(self.scratch.feasible.len(), n);
        true
    }

    /// Route a timeline delta: applied immediately, or queued for the next
    /// search in deferred mode (the paper's background-update option).
    ///
    /// The delta must not alias `self.scratch.delta` (callers `mem::take` it
    /// first), so the index updates below are free to use the scratch
    /// buffers.
    fn apply_delta(&mut self, delta: &PeriodDelta) {
        if self.cfg.deferred_updates {
            for p in &delta.removed {
                self.pending.push(PendingOp::Remove(*p));
            }
            for p in &delta.added {
                self.pending.push(PendingOp::Add(*p));
            }
            return;
        }
        self.apply_delta_now(delta);
    }

    /// Flush every queued index update. Called automatically before any
    /// search in deferred mode; exposed so embedders can flush during idle
    /// time ("in the background").
    pub fn flush_updates(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        for op in pending.drain(..) {
            match op {
                PendingOp::Remove(p) => self.remove_from_indexes(&p),
                PendingOp::Add(p) => self.add_to_indexes(&p),
            }
        }
        // Hand the (now empty) buffer back so its capacity is reused. Any
        // ops a re-entrant call queued in the meantime are preserved.
        if self.pending.is_empty() {
            self.pending = pending;
        }
    }

    /// Number of queued index updates (deferred mode diagnostics).
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Route a timeline delta into the two indexes: finite periods to the
    /// slot-tree ring, open-ended ones to the trailing set.
    fn apply_delta_now(&mut self, delta: &PeriodDelta) {
        for p in &delta.removed {
            self.remove_from_indexes(p);
        }
        for p in &delta.added {
            self.add_to_indexes(p);
        }
    }

    fn remove_from_indexes(&mut self, p: &IdlePeriod) {
        if p.end.is_inf() {
            let removed = self.trailing.remove(p, &mut self.stats);
            debug_assert!(removed, "trailing period {p:?} missing");
        } else {
            self.ring
                .remove_period_with(p, &mut self.scratch, &mut self.stats);
        }
    }

    fn add_to_indexes(&mut self, p: &IdlePeriod) {
        if p.end.is_inf() {
            self.trailing.insert(p, &mut self.stats);
        } else {
            self.ring
                .insert_period_with(p, &mut self.scratch, &mut self.stats);
        }
    }

    /// Commit the reservation on the chosen periods, mirroring every
    /// idle-period change into the slot trees.
    fn commit(
        &mut self,
        chosen: &[IdlePeriod],
        start: Time,
        end: Time,
        attempts: u32,
        earliest: Time,
    ) -> Grant {
        let job = JobId(self.next_job);
        self.next_job += 1;
        let mut servers = Vec::with_capacity(chosen.len());
        let mut reservations = Vec::with_capacity(chosen.len());
        let mut delta = std::mem::take(&mut self.scratch.delta);
        for p in chosen {
            self.timeline.reserve_into(p.id, job, start, end, &mut delta);
            self.apply_delta(&delta);
            servers.push(p.server);
            reservations.push(Reservation {
                job,
                server: p.server,
                start,
                end,
            });
        }
        self.scratch.delta = delta;
        self.profile.add(start, end, chosen.len() as u32);
        self.jobs.insert(job, reservations);
        Grant {
            job,
            start,
            end,
            servers,
            attempts,
            waiting: start.saturating_since(earliest),
        }
    }

    /// Handle a request that must **complete by `deadline`** — the paper's
    /// Section 5.2 extension: "the algorithm can be easily extended to
    /// support user's deadline by setting the starting time to the earliest
    /// time a given job needs to start to meet the deadline imposed by the
    /// user".
    ///
    /// The retry loop is bounded so that no candidate start later than
    /// `deadline - l_r` is tried; if none works the request fails with
    /// [`ScheduleError::Exhausted`] (a deadline miss) rather than being
    /// scheduled late.
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    ///
    /// let mut sched = CoAllocScheduler::new(1, SchedulerConfig::default());
    /// // The single server is busy for the first hour...
    /// sched.submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 1)).unwrap();
    /// // ...so a job that must finish within that hour misses its deadline,
    /// let miss = sched.submit_with_deadline(
    ///     &Request::on_demand(Time::ZERO, Dur::from_mins(30), 1),
    ///     Time::from_hours(1),
    /// );
    /// assert!(miss.is_err());
    /// // while a laxer deadline lets the retry loop shift past the hour.
    /// let grant = sched.submit_with_deadline(
    ///     &Request::on_demand(Time::ZERO, Dur::from_mins(30), 1),
    ///     Time::from_hours(2),
    /// ).unwrap();
    /// assert!(grant.end <= Time::from_hours(2));
    /// ```
    pub fn submit_with_deadline(
        &mut self,
        req: &Request,
        deadline: Time,
    ) -> Result<Grant, ScheduleError> {
        req.validate()?;
        if req.servers > self.num_servers() {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: self.num_servers(),
            });
        }
        let earliest = req.earliest_start.max(self.now);
        let latest_start = deadline - req.duration;
        if latest_start < earliest {
            return Err(ScheduleError::Exhausted {
                attempts: 0,
                last_tried: earliest,
            });
        }
        let r_max = self.cfg.effective_r_max();
        REQUESTS.inc();
        let before = self.stats;
        let mut span = obs_span!(
            "sched.submit",
            "servers" => req.servers,
            "duration_s" => req.duration.secs().max(0) as u64,
            "deadline_s" => deadline.secs()
        );
        // Same retry loop as `submit`, with the deadline as an extra budget
        // cap: no start later than `deadline - l_r` is ever considered.
        let budget = (r_max as u64 + 1)
            .min(((latest_start - earliest).secs() / self.cfg.delta_t.secs()) as u64 + 1);
        let (result, probed) = self.search_loop(req, earliest, budget);
        ATTEMPTS_HIST.observe(probed as u64);
        record_op_delta(&self.stats.since(&before));
        match &result {
            Ok(_) => GRANTS.inc(),
            Err(_) => REJECTS.inc(),
        }
        if span.active() {
            span.record("outcome", if result.is_ok() { "granted" } else { "rejected" });
            span.record("attempts", probed);
        }
        result
    }

    /// Assign capability tags to a server (see [`crate::attrs`]).
    pub fn set_server_attrs(&mut self, server: ServerId, attrs: AttrSet) {
        self.attrs[server.0 as usize] = attrs;
    }

    /// The capability tags of a server.
    pub fn server_attrs(&self, server: ServerId) -> AttrSet {
        self.attrs[server.0 as usize]
    }

    /// Enumerate **all** feasible idle periods for a job occupying
    /// `[start, end)` (trailing candidates first, then the slot tree's
    /// Phase-2 hits). Used by the constrained submission path and available
    /// to applications needing the complete set.
    pub fn enumerate_feasible(&mut self, start: Time, end: Time) -> Vec<IdlePeriod> {
        self.flush_updates();
        let q = self.slot_cfg.slot_of(start);
        if !self.ring.is_live(q) {
            return Vec::new();
        }
        let mut ids = Vec::new();
        self.trailing
            .collect_candidates(start, usize::MAX, &mut ids, &mut self.stats);
        self.ring.find_feasible_into(
            q,
            start,
            end,
            usize::MAX,
            &mut self.scratch.stab,
            &mut ids,
            &mut self.stats,
        );
        ids.iter()
            .map(|id| {
                *self
                    .timeline
                    .period(*id)
                    .expect("index refers to live period")
            })
            .collect()
    }

    /// Count one scheduling attempt (constrained path).
    pub(crate) fn bump_attempts(&mut self) {
        self.stats.attempts += 1;
    }

    /// Commit helper for the constrained path.
    pub(crate) fn commit_with_attempts(
        &mut self,
        chosen: &[IdlePeriod],
        start: Time,
        end: Time,
        attempts: u32,
        earliest: Time,
    ) -> Grant {
        self.commit(chosen, start, end, attempts, earliest)
    }

    /// The clock value the scheduler started at.
    pub fn origin(&self) -> Time {
        self.origin
    }

    /// The id the next committed job will receive (snapshot support).
    pub fn next_job_id(&self) -> u64 {
        self.next_job
    }

    /// Overwrite the job-id sequence (snapshot restore only).
    pub(crate) fn set_next_job_id(&mut self, next: u64) {
        self.next_job = next;
    }

    /// Re-commit one reservation verbatim (snapshot restore): the window
    /// must be fully idle on the server. Errors if it is not.
    pub(crate) fn restore_reservation(
        &mut self,
        job: JobId,
        server: ServerId,
        start: Time,
        end: Time,
    ) -> Result<(), ()> {
        let Some(p) = self.timeline.covering_idle(server, start, end) else {
            return Err(());
        };
        let mut delta = std::mem::take(&mut self.scratch.delta);
        self.timeline.reserve_into(p.id, job, start, end, &mut delta);
        self.apply_delta(&delta);
        self.scratch.delta = delta;
        self.profile.add(start, end, 1);
        self.jobs.entry(job).or_default().push(Reservation {
            job,
            server,
            start,
            end,
        });
        Ok(())
    }

    /// Split borrow helper for the read-only searches in
    /// [`crate::range_search`].
    pub(crate) fn search_parts(
        &mut self,
    ) -> (
        &SlotRing,
        &TrailingSet,
        &mut crate::ring::StabMarks,
        &mut OpStats,
    ) {
        self.flush_updates();
        (
            &self.ring,
            &self.trailing,
            &mut self.scratch.stab,
            &mut self.stats,
        )
    }

    /// Commit an externally validated selection (query-then-commit flow).
    pub(crate) fn commit_chosen(
        &mut self,
        chosen: &[IdlePeriod],
        start: Time,
        end: Time,
    ) -> Grant {
        self.commit(chosen, start, end, 1, start)
    }

    /// Cancel a committed job, returning its windows to the idle pool (used
    /// by users cancelling reservations and by the multi-site abort path).
    /// Reservations that already ran to completion are retired (their busy
    /// seconds stay in the utilization accounting); jobs whose history was
    /// pruned by [`Self::advance_to`] were forgotten at prune time and
    /// report [`ScheduleError::UnknownJob`] — identically on the original
    /// and on any snapshot-restored twin.
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    ///
    /// let mut sched = CoAllocScheduler::new(2, SchedulerConfig::default());
    /// let grant = sched
    ///     .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 2))
    ///     .unwrap();
    /// sched.release(grant.job).unwrap();
    /// // Releasing twice is an error, not a silent no-op.
    /// assert!(matches!(
    ///     sched.release(grant.job),
    ///     Err(ScheduleError::UnknownJob(_))
    /// ));
    /// ```
    pub fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        let mut reservations =
            self.jobs.remove(&job).ok_or(ScheduleError::UnknownJob(job))?;
        // Canonical processing order. The stored order is the selection
        // order on a live scheduler but snapshot order on a restored one;
        // since releasing mints fresh period ids per server, processing in
        // stored order would assign ids differently on the two — and period
        // ids are decision-relevant (Phase-2 retrieval is keyed by
        // `(end, id)`). Sorting makes release provenance-independent.
        reservations.sort_unstable_by_key(|r| (r.server, r.start));
        let mut delta = std::mem::take(&mut self.scratch.delta);
        for r in reservations {
            // Withdraw from the capacity profile unconditionally: expired
            // portions clamp away (their leaves were zeroed by rotation),
            // so this is exact for retired and pruned history too.
            self.profile.remove(r.start, r.end, 1);
            if r.end <= self.last_prune {
                continue; // actually pruned from history
            }
            if r.end <= self.ring.window_start() {
                // Ran to completion but is still in unpruned history:
                // retire it (count the busy seconds, drop the entry) so
                // the timeline — and therefore every future snapshot — no
                // longer carries it. Leaving it would make a
                // snapshot-restored scheduler resurrect the job and answer
                // a second `release` differently from the original.
                self.timeline.retire(r.server, r.job, r.start, r.end);
                continue;
            }
            self.timeline
                .release_into(r.server, r.job, r.start, r.end, &mut delta);
            self.apply_delta(&delta);
        }
        self.scratch.delta = delta;
        Ok(())
    }

    /// Cross-checks the slot-tree mirror against the timeline (test helper;
    /// expensive).
    #[doc(hidden)]
    pub fn check_consistency(&self) {
        assert!(
            self.pending.is_empty(),
            "flush_updates before checking consistency"
        );
        self.timeline.check_invariants();
        self.ring.check_mirror(&self.timeline);
        self.trailing.check_invariants();
        // The trailing set holds exactly the timeline's open-ended periods.
        let mut expect: Vec<u64> = (0..self.num_servers())
            .map(|s| self.timeline.trailing_period(ServerId(s)).id.0)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = self.trailing.ids_in_order().iter().map(|p| p.0).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "trailing set out of sync with timeline");
        // The capacity profile's live slots recount exactly from the jobs
        // map: completed-but-unreleased and pruned history covers no live
        // slot, so it cancels on both sides.
        self.profile
            .check_against(self.jobs.values().flatten().map(|r| (r.start, r.end)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .build()
    }

    #[test]
    fn empty_system_grants_immediately() {
        let mut s = CoAllocScheduler::new(4, small_cfg());
        let grant = s
            .submit(&Request::on_demand(Time::ZERO, Dur(30), 3))
            .unwrap();
        assert_eq!(grant.start, Time::ZERO);
        assert_eq!(grant.end, Time(30));
        assert_eq!(grant.servers.len(), 3);
        assert_eq!(grant.attempts, 1);
        assert_eq!(grant.waiting, Dur::ZERO);
        s.check_consistency();
    }

    #[test]
    fn distinct_servers_are_allocated() {
        let mut s = CoAllocScheduler::new(4, small_cfg());
        let grant = s
            .submit(&Request::on_demand(Time::ZERO, Dur(30), 4))
            .unwrap();
        let mut servers = grant.servers.clone();
        servers.sort();
        servers.dedup();
        assert_eq!(servers.len(), 4, "servers must be distinct");
    }

    #[test]
    fn saturated_system_delays_via_delta_t() {
        let mut s = CoAllocScheduler::new(2, small_cfg());
        // Fill both servers for [0, 30).
        s.submit(&Request::on_demand(Time::ZERO, Dur(30), 2)).unwrap();
        // Next job must wait until t = 30 (three Delta_t shifts).
        let grant = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
        assert_eq!(grant.start, Time(30));
        assert_eq!(grant.attempts, 4);
        assert_eq!(grant.waiting, Dur(30));
        s.check_consistency();
    }

    #[test]
    fn too_many_servers_rejected_up_front() {
        let mut s = CoAllocScheduler::new(2, small_cfg());
        let err = s
            .submit(&Request::on_demand(Time::ZERO, Dur(10), 3))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::TooManyServers { .. }));
    }

    #[test]
    fn horizon_bounds_the_search() {
        let mut s = CoAllocScheduler::new(1, small_cfg());
        // Duration exceeding the horizon can never fit.
        let err = s
            .submit(&Request::on_demand(Time::ZERO, Dur(200), 1))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::HorizonExceeded { .. }));
    }

    #[test]
    fn r_max_exhaustion() {
        let cfg = SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(100))
            .delta_t(Dur(10))
            .r_max(2)
            .build();
        let mut s = CoAllocScheduler::new(1, cfg);
        s.submit(&Request::on_demand(Time::ZERO, Dur(90), 1)).unwrap();
        let err = s
            .submit(&Request::on_demand(Time::ZERO, Dur(10), 1))
            .unwrap_err();
        // Attempts at t = 0, 10, 20 all collide with the running job and
        // R_max = 2 retries are then exhausted.
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 3,
                last_tried: Time(20)
            }
        );
    }

    #[test]
    fn advance_reservation_books_the_future() {
        let mut s = CoAllocScheduler::new(2, small_cfg());
        let grant = s
            .submit(&Request::advance(Time::ZERO, Time(20), Dur(20), 2))
            .unwrap();
        assert_eq!(grant.start, Time(20));
        assert_eq!(grant.waiting, Dur::ZERO);
        // An on-demand job needing both servers for 30s cannot fit before it.
        let g2 = s.submit(&Request::on_demand(Time::ZERO, Dur(30), 2)).unwrap();
        assert_eq!(g2.start, Time(40));
        assert_eq!(g2.attempts, 5);
        s.check_consistency();
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = CoAllocScheduler::new(1, small_cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(100), 1)).unwrap();
        let err = s
            .submit(&Request::advance(Time::ZERO, Time(10), Dur(20), 1))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Exhausted { .. } | ScheduleError::HorizonExceeded { .. }));
        s.release(g.job).unwrap();
        let g2 = s
            .submit(&Request::advance(Time::ZERO, Time(10), Dur(20), 1))
            .unwrap();
        assert_eq!(g2.start, Time(10));
        assert_eq!(s.release(JobId(999)), Err(ScheduleError::UnknownJob(JobId(999))));
        s.check_consistency();
    }

    #[test]
    fn clock_advance_enables_new_horizon() {
        let mut s = CoAllocScheduler::new(1, small_cfg());
        assert_eq!(s.horizon_end(), Time(100));
        s.advance_to(Time(40));
        assert_eq!(s.horizon_end(), Time(140));
        // A job ending at 130 now fits.
        let g = s
            .submit(&Request::advance(Time(40), Time(60), Dur(70), 1))
            .unwrap();
        assert_eq!(g.start, Time(60));
        s.check_consistency();
    }

    #[test]
    fn on_demand_after_clock_advance_starts_now() {
        let mut s = CoAllocScheduler::new(1, small_cfg());
        s.advance_to(Time(25));
        // Request stamped earlier than the clock is clamped to "now".
        let g = s.submit(&Request::on_demand(Time(20), Dur(10), 1)).unwrap();
        assert_eq!(g.start, Time(25));
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let mut s = CoAllocScheduler::new(2, small_cfg());
        assert!(matches!(
            s.submit(&Request::on_demand(Time::ZERO, Dur(10), 0)),
            Err(ScheduleError::InvalidRequest(_))
        ));
        assert!(matches!(
            s.submit(&Request::on_demand(Time::ZERO, Dur(0), 1)),
            Err(ScheduleError::InvalidRequest(_))
        ));
    }

    #[test]
    fn deferred_updates_preserve_semantics() {
        let eager_cfg = small_cfg();
        let deferred_cfg = SchedulerConfig {
            deferred_updates: true,
            ..small_cfg()
        };
        let mut eager = CoAllocScheduler::new(3, eager_cfg);
        let mut deferred = CoAllocScheduler::new(3, deferred_cfg);
        let reqs = [
            Request::on_demand(Time::ZERO, Dur(30), 2),
            Request::advance(Time::ZERO, Time(40), Dur(20), 3),
            Request::on_demand(Time::ZERO, Dur(50), 1),
            Request::on_demand(Time::ZERO, Dur(10), 3),
        ];
        for r in &reqs {
            let a = eager.submit(r);
            let b = deferred.submit(r);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.start, y.start);
                    assert_eq!(x.servers.len(), y.servers.len());
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("eager/deferred divergence: {other:?}"),
            }
        }
        // Commits queued after the last grant are still pending...
        assert!(deferred.pending_updates() > 0);
        // ...until a search or an explicit flush.
        deferred.flush_updates();
        assert_eq!(deferred.pending_updates(), 0);
        deferred.check_consistency();
        eager.check_consistency();
    }

    #[test]
    fn deferred_flush_is_implicit_before_searches() {
        let cfg = SchedulerConfig {
            deferred_updates: true,
            ..small_cfg()
        };
        let mut s = CoAllocScheduler::new(2, cfg);
        s.submit(&Request::on_demand(Time::ZERO, Dur(50), 2)).unwrap();
        assert!(s.pending_updates() > 0);
        // The range search must see the committed reservation.
        assert_eq!(s.range_search(Time(0), Time(40)).len(), 0);
        assert_eq!(s.pending_updates(), 0);
        s.check_consistency();
    }

    #[test]
    fn deadline_support_meets_or_fails() {
        let mut s = CoAllocScheduler::new(1, small_cfg());
        // Busy [0, 30).
        s.submit(&Request::on_demand(Time::ZERO, Dur(30), 1)).unwrap();
        // A 20s job must finish by t=60: only start 30 or 40 works.
        let g = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(20), 1), Time(60))
            .unwrap();
        assert_eq!(g.start, Time(30));
        assert!(g.end <= Time(60));
        // A 20s job due by t=45 can now only start at 30..=25 — impossible
        // (t=30..50 is taken by the job above); deadline miss.
        let err = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(20), 1), Time(45))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Exhausted { .. }));
        // Impossible deadline (already too late at submission).
        let err = s
            .submit_with_deadline(&Request::on_demand(Time::ZERO, Dur(50), 1), Time(40))
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::Exhausted {
                attempts: 0,
                last_tried: Time::ZERO
            }
        );
        s.check_consistency();
    }

    #[test]
    fn deadline_never_schedules_late() {
        let mut s = CoAllocScheduler::new(2, small_cfg());
        s.submit(&Request::on_demand(Time::ZERO, Dur(40), 2)).unwrap();
        for deadline in [50i64, 60, 70, 80] {
            if let Ok(g) = s.submit_with_deadline(
                &Request::on_demand(Time::ZERO, Dur(10), 1),
                Time(deadline),
            ) {
                assert!(g.end <= Time(deadline), "grant {g:?} misses {deadline}");
            }
        }
        s.check_consistency();
    }

    #[test]
    fn paper_example_reconstructed_end_to_end() {
        // Reconstruct Figure 1/2: a 4-server system with reservations that
        // leave idle periods X=(4,25) on srv0, Y=(16,33) on srv1, Z=(7,33)
        // on srv2, V=(1,18) on srv3 (within a tau=10 slotting), then submit
        // r = (q_r=17, s_r=17, l_r=12, n_r=2) and observe it is granted at
        // t=17 on the two servers whose idle periods are Y and Z.
        let cfg = SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(50))
            .delta_t(Dur(10))
            .seed(7)
            .build();
        let mut s = CoAllocScheduler::new(4, cfg);
        // Job A on srv-like periods: carve busy windows so that the idle
        // structure matches the figure. Each reserve targets one server via
        // ByServerId-like manual commits: use advance reservations with 1
        // server each and check which server got them.
        // Simpler: reserve via the timeline-level API is private, so shape
        // the system with 1-server requests and verify feasibility behaviour
        // rather than exact server identity.
        // Busy prefixes: srv gets [0, st) busy, and [et, horizon) busy via
        // one more reservation where et is finite.
        // We exercise the public API only: allocate 4 one-server jobs with
        // distinct windows. The scheduler picks servers deterministically;
        // we then query feasibility for the paper's request.
        let windows = [(0, 4, 25), (0, 16, 33), (0, 7, 33), (0, 1, 18)];
        for &(_, st, _) in &windows {
            if st > 0 {
                s.submit(&Request::advance(Time::ZERO, Time::ZERO, Dur(st), 1))
                    .unwrap();
            }
        }
        // Now each server is busy [0, st) for st in {4, 16, 7, 1}; trailing
        // idle periods start at exactly {4, 16, 7, 1}.
        let g = s
            .submit(&Request::advance(Time::ZERO, Time(17), Dur(12), 2))
            .unwrap();
        assert_eq!(g.start, Time(17), "paper example grants at s_r");
        assert_eq!(g.servers.len(), 2);
        s.check_consistency();
    }
}
