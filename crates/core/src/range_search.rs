//! Temporal range searches and the query-then-commit flow (Section 4.2,
//! "Range Searches").
//!
//! "A user that is interested in reserving resources within a time window
//! `[t_a, t_b]` may submit a request such that `s_r = t_a`,
//! `l_r = t_b - t_a` and `n_r >= 1`. The scheduler runs a simplified version
//! of the algorithm and returns the set of resources available (if any) in
//! this window, *without updating the tree data structures*. The user may
//! then run an application-specific algorithm to select a subset of these
//! resources [...] and contact the scheduler to commit the resources."
//!
//! [`CoAllocScheduler::range_search`] is the read-only query;
//! [`CoAllocScheduler::commit_selection`] is the second half of the
//! handshake, revalidating the selection so that a stale pick (another user
//! got there first) fails with [`ScheduleError::SelectionConflict`] instead
//! of corrupting the schedule.

use crate::error::ScheduleError;
use crate::idle::IdlePeriod;
use crate::ids::PeriodId;
use crate::request::Request;
use crate::scheduler::{CoAllocScheduler, Grant};
use crate::time::Time;
use obs::{obs_span, LazyCounter};

static RANGE_SEARCHES: LazyCounter = LazyCounter::new("range_searches_total");
static RANGE_COUNTS: LazyCounter = LazyCounter::new("range_counts_total");

/// One hit of a range search: an idle period that covers the whole queried
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Availability {
    /// The underlying idle period (pass its `id` to
    /// [`CoAllocScheduler::commit_selection`]).
    pub period: IdlePeriod,
    /// How much slack is left after the window, `et_i - t_b` (clipped to the
    /// horizon for open-ended periods). Applications commonly maximize or
    /// minimize this during post-processing.
    pub tail_slack: crate::time::Dur,
}

impl CoAllocScheduler {
    /// Find **all** resources available for the whole window `[start, end)`,
    /// without modifying any state (beyond operation counters).
    ///
    /// Returns one [`Availability`] per feasible idle period, in the order
    /// the two-phase search discovers them (latest-starting candidates
    /// first). Returns an empty vector when the window is degenerate or
    /// starts outside the live horizon.
    ///
    /// ```
    /// use coalloc_core::prelude::*;
    ///
    /// let mut sched = CoAllocScheduler::new(3, SchedulerConfig::default());
    /// sched.submit(&Request::on_demand(Time::ZERO, Dur::from_hours(2), 1)).unwrap();
    /// // One server is busy for two hours; the other two are free.
    /// let free = sched.range_search(Time::from_hours(1), Time::from_hours(2));
    /// assert_eq!(free.len(), 2);
    /// // Query-then-commit: reserve one of them atomically.
    /// let pick = [free[0].period.id];
    /// let grant = sched
    ///     .commit_selection(&pick, Time::from_hours(1), Time::from_hours(2))
    ///     .unwrap();
    /// assert_eq!(grant.servers.len(), 1);
    /// ```
    pub fn range_search(&mut self, start: Time, end: Time) -> Vec<Availability> {
        RANGE_SEARCHES.inc();
        let start = start.max(self.now());
        let horizon = self.horizon_end();
        if end <= start || start >= horizon || end > horizon {
            return Vec::new();
        }
        // Searches always flush deferred index updates, even when the
        // profile reject below skips the tree walk (the profile itself is
        // maintained eagerly, so it never needs the flush).
        self.flush_updates();
        // Profile fast reject: a zero free upper bound means some server is
        // busy throughout every instant-covering slot of the window, i.e.
        // the exact feasible set is provably empty — skip the tree walk.
        if self.capacity_profile().free_upper_bound(start, end) == 0 {
            return Vec::new();
        }
        let mut span = obs_span!("sched.range_search", "start_s" => start.secs(), "end_s" => end.secs());
        let q = self.ring().config().slot_of(start);
        // Split borrows: the search needs &ring, &trailing, the stabbing
        // scratch and &mut stats.
        let (ring, trailing, stab, stats) = self.search_parts();
        // Trailing periods with st <= start are feasible for any window.
        let mut ids = Vec::new();
        trailing.collect_candidates(start, usize::MAX, &mut ids, stats);
        ring.find_feasible_into(q, start, end, usize::MAX, stab, &mut ids, stats);
        if span.active() {
            span.record("hits", ids.len());
        }
        ids.iter()
            .map(|id| {
                let period = *self
                    .timeline()
                    .period(*id)
                    .expect("slot tree refers to live period");
                Availability {
                    period,
                    tail_slack: period.end.min(horizon) - end,
                }
            })
            .collect()
    }

    /// Count the resources available for `[start, end)` without enumerating
    /// them (subtree-size counting only — cheaper than
    /// [`Self::range_search`] when only the count matters).
    pub fn range_count(&mut self, start: Time, end: Time) -> usize {
        RANGE_COUNTS.inc();
        let start = start.max(self.now());
        let horizon = self.horizon_end();
        if end <= start || start >= horizon || end > horizon {
            return 0;
        }
        // Same flush-then-fast-reject as `range_search`.
        self.flush_updates();
        if self.capacity_profile().free_upper_bound(start, end) == 0 {
            return 0;
        }
        let q = self.ring().config().slot_of(start);
        let (ring, trailing, stab, stats) = self.search_parts();
        let trailing_count = trailing.count_candidates(start, stats);
        let count = ring.phase1_candidates_into(q, start, stab, stats);
        if count == 0 {
            return trailing_count;
        }
        trailing_count + ring.count_feasible(end, stab, stats)
    }

    /// Commit a user's post-processed selection: reserve `[start, end)` on
    /// exactly the idle periods named in `selection`.
    ///
    /// Every period must still exist and still cover the window; otherwise
    /// nothing is committed and [`ScheduleError::SelectionConflict`] is
    /// returned — idle-period ids are never reused, so any interleaved
    /// allocation that touched a selected period is detected.
    pub fn commit_selection(
        &mut self,
        selection: &[PeriodId],
        start: Time,
        end: Time,
    ) -> Result<Grant, ScheduleError> {
        if selection.is_empty() {
            return Err(ScheduleError::InvalidRequest(
                crate::request::RequestError::ZeroServers,
            ));
        }
        if end <= start {
            return Err(ScheduleError::InvalidRequest(
                crate::request::RequestError::NonPositiveDuration,
            ));
        }
        if start < self.now() {
            return Err(ScheduleError::StartInPast { now: self.now() });
        }
        if end > self.horizon_end() {
            return Err(ScheduleError::HorizonExceeded {
                horizon_end: self.horizon_end(),
            });
        }
        let mut chosen = Vec::with_capacity(selection.len());
        let mut seen_servers = std::collections::HashSet::new();
        for id in selection {
            let Some(p) = self.timeline().period(*id).copied() else {
                return Err(ScheduleError::SelectionConflict);
            };
            if !p.is_feasible(start, end) || !seen_servers.insert(p.server) {
                return Err(ScheduleError::SelectionConflict);
            }
            chosen.push(p);
        }
        Ok(self.commit_chosen(&chosen, start, end))
    }

    /// Run a range search shaped like a [`Request`] (the paper's calling
    /// convention: `s_r = t_a`, `l_r = t_b - t_a`).
    pub fn range_search_request(&mut self, req: &Request) -> Vec<Availability> {
        self.range_search(req.earliest_start, req.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::scheduler::SchedulerConfig;
    use crate::time::Dur;

    fn sched(n: u32) -> CoAllocScheduler {
        CoAllocScheduler::new(
            n,
            SchedulerConfig::builder()
                .tau(Dur(10))
                .horizon(Dur(100))
                .delta_t(Dur(10))
                .build(),
        )
    }

    #[test]
    fn range_search_sees_all_free_servers() {
        let mut s = sched(4);
        let hits = s.range_search(Time(20), Time(40));
        assert_eq!(hits.len(), 4);
        for h in &hits {
            // Open-ended periods are clipped to the horizon for slack.
            assert_eq!(h.tail_slack, Dur(60));
        }
        assert_eq!(s.range_count(Time(20), Time(40)), 4);
    }

    #[test]
    fn range_search_excludes_busy_windows() {
        let mut s = sched(2);
        s.submit(&Request::advance(Time::ZERO, Time(20), Dur(30), 1))
            .unwrap();
        assert_eq!(s.range_search(Time(25), Time(45)).len(), 1);
        assert_eq!(s.range_search(Time(50), Time(60)).len(), 2);
        assert_eq!(s.range_count(Time(25), Time(45)), 1);
    }

    #[test]
    fn range_search_is_read_only() {
        let mut s = sched(3);
        let before = s.timeline().idle_periods(crate::ids::ServerId(0));
        let _ = s.range_search(Time(0), Time(50));
        let _ = s.range_count(Time(0), Time(50));
        assert_eq!(s.timeline().idle_periods(crate::ids::ServerId(0)), before);
        s.check_consistency();
    }

    #[test]
    fn degenerate_and_out_of_horizon_windows_return_empty() {
        let mut s = sched(2);
        assert!(s.range_search(Time(30), Time(30)).is_empty());
        assert!(s.range_search(Time(40), Time(20)).is_empty());
        assert!(s.range_search(Time(90), Time(150)).is_empty());
        assert_eq!(s.range_count(Time(90), Time(150)), 0);
    }

    #[test]
    fn query_then_commit_happy_path() {
        let mut s = sched(4);
        let hits = s.range_search(Time(10), Time(30));
        // Application-side post-processing: pick the two with the least
        // slack (all equal here, so just take two).
        let pick: Vec<_> = hits.iter().take(2).map(|h| h.period.id).collect();
        let grant = s.commit_selection(&pick, Time(10), Time(30)).unwrap();
        assert_eq!(grant.servers.len(), 2);
        assert_eq!(grant.start, Time(10));
        s.check_consistency();
        // The window is now taken on those servers.
        assert_eq!(s.range_search(Time(10), Time(30)).len(), 2);
    }

    #[test]
    fn stale_selection_is_rejected_atomically() {
        let mut s = sched(2);
        let hits = s.range_search(Time(10), Time(30));
        let pick: Vec<_> = hits.iter().map(|h| h.period.id).collect();
        // Another user books one of the servers in between.
        s.submit(&Request::advance(Time::ZERO, Time(15), Dur(10), 2))
            .unwrap();
        let err = s.commit_selection(&pick, Time(10), Time(30)).unwrap_err();
        assert_eq!(err, ScheduleError::SelectionConflict);
        // Nothing was committed for the failed selection.
        s.check_consistency();
    }

    #[test]
    fn duplicate_server_selection_rejected() {
        let mut s = sched(2);
        let hits = s.range_search(Time(10), Time(30));
        let id = hits[0].period.id;
        let err = s.commit_selection(&[id, id], Time(10), Time(30)).unwrap_err();
        assert_eq!(err, ScheduleError::SelectionConflict);
    }

    #[test]
    fn commit_validation_errors() {
        let mut s = sched(2);
        let hits = s.range_search(Time(10), Time(30));
        let id = hits[0].period.id;
        assert!(matches!(
            s.commit_selection(&[], Time(10), Time(30)),
            Err(ScheduleError::InvalidRequest(_))
        ));
        assert!(matches!(
            s.commit_selection(&[id], Time(30), Time(10)),
            Err(ScheduleError::InvalidRequest(_))
        ));
        assert!(matches!(
            s.commit_selection(&[id], Time(10), Time(500)),
            Err(ScheduleError::HorizonExceeded { .. })
        ));
        s.advance_to(Time(50));
        assert!(matches!(
            s.commit_selection(&[id], Time(10), Time(30)),
            Err(ScheduleError::StartInPast { .. })
        ));
    }

    #[test]
    fn range_search_request_uses_paper_convention() {
        let mut s = sched(3);
        let req = Request::advance(Time::ZERO, Time(20), Dur(30), 1);
        let hits = s.range_search_request(&req);
        assert_eq!(hits.len(), 3);
    }
}
