//! Idle periods and their ordering keys.
//!
//! An *idle period* is a maximal time interval during which a server is idle
//! and hence available for service (Section 4.1). The slotted trees order
//! idle periods by **descending start time** (primary dimension) and by
//! **ascending end time** (secondary dimension); both orderings are made
//! strict by tie-breaking on the unique [`PeriodId`].

use crate::ids::{PeriodId, ServerId};
use crate::time::Time;
use std::cmp::Ordering;

/// One idle period `i = (st_i, et_i)` on server `id_i`.
///
/// The interval is half-open `[start, end)`. `end == Time::INF` encodes the
/// trailing, open-ended idle period on a server (idle until the horizon,
/// however far it advances).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdlePeriod {
    /// Unique identifier; never reused.
    pub id: PeriodId,
    /// The server on which this idle period occurs (`id_i`).
    pub server: ServerId,
    /// Starting time `st_i`.
    pub start: Time,
    /// Ending time `et_i` (exclusive); `Time::INF` when open-ended.
    pub end: Time,
}

impl IdlePeriod {
    /// A period is *feasible* for a job occupying `[start, end)` iff
    /// `st_i <= start` and `et_i >= end` (Section 4.2).
    #[inline]
    pub fn is_feasible(&self, start: Time, end: Time) -> bool {
        self.start <= start && self.end >= end
    }

    /// A period is a *candidate* for a job starting at `start` iff
    /// `st_i <= start` (the Phase-1 condition).
    #[inline]
    pub fn is_candidate(&self, start: Time) -> bool {
        self.start <= start
    }

    /// The primary-tree key (descending start order).
    #[inline]
    pub fn start_key(&self) -> StartKey {
        StartKey {
            start: self.start,
            id: self.id,
        }
    }

    /// The secondary-tree key (ascending end order).
    #[inline]
    pub fn end_key(&self) -> EndKey {
        EndKey {
            end: self.end,
            id: self.id,
        }
    }
}

/// Primary ordering key: sorts idle periods by **descending** starting time
/// (the order in which `T_q^s` stores its leaves), tie-broken by id so that
/// the order is total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StartKey {
    /// Starting time of the period.
    pub start: Time,
    /// Tie-breaker.
    pub id: PeriodId,
}

impl Ord for StartKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Descending by start, then ascending by id.
        other
            .start
            .cmp(&self.start)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for StartKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Secondary ordering key: sorts idle periods by **ascending** ending time
/// (the order in which `T_q^e(u)` stores its leaves), tie-broken by id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EndKey {
    /// Ending time of the period.
    pub end: Time,
    /// Tie-breaker.
    pub id: PeriodId,
}

impl EndKey {
    /// The smallest key whose periods end at or after `end` — used as the
    /// lower bound of the Phase-2 "feasible" range `et_i >= e_r`.
    #[inline]
    pub fn range_floor(end: Time) -> EndKey {
        EndKey {
            end,
            id: PeriodId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u64, start: i64, end: i64) -> IdlePeriod {
        IdlePeriod {
            id: PeriodId(id),
            server: ServerId(0),
            start: Time(start),
            end: Time(end),
        }
    }

    #[test]
    fn start_key_orders_descending() {
        // Paper's Figure 2: leaves of T_2^s in descending start order are
        // Y(16), Z(7), X(4), V(1).
        let x = p(1, 4, 25);
        let y = p(2, 16, 33);
        let z = p(3, 7, 33);
        let v = p(4, 1, 18);
        let mut keys = [x.start_key(), y.start_key(), z.start_key(), v.start_key()];
        keys.sort();
        assert_eq!(
            keys.iter().map(|k| k.start.0).collect::<Vec<_>>(),
            vec![16, 7, 4, 1]
        );
    }

    #[test]
    fn end_key_orders_ascending_with_tiebreak() {
        let a = p(10, 0, 18);
        let b = p(11, 0, 33);
        let c = p(12, 0, 33);
        let mut keys = [c.end_key(), b.end_key(), a.end_key()];
        keys.sort();
        assert_eq!(keys[0].end, Time(18));
        assert_eq!(keys[1].id, PeriodId(11));
        assert_eq!(keys[2].id, PeriodId(12));
    }

    #[test]
    fn feasibility_conditions() {
        let i = p(1, 4, 25);
        // Paper example: request (s_r=17, e_r=29): X(4,25) is a candidate but
        // not feasible.
        assert!(i.is_candidate(Time(17)));
        assert!(!i.is_feasible(Time(17), Time(29)));
        // Y(16,33) is feasible.
        let y = p(2, 16, 33);
        assert!(y.is_feasible(Time(17), Time(29)));
        // Open-ended periods are feasible for any end.
        let open = IdlePeriod {
            id: PeriodId(3),
            server: ServerId(1),
            start: Time(0),
            end: Time::INF,
        };
        assert!(open.is_feasible(Time(17), Time(1 << 40)));
    }

    #[test]
    fn start_key_tiebreak_is_total() {
        let a = p(1, 5, 10);
        let b = p(2, 5, 12);
        assert!(a.start_key() < b.start_key());
        assert_ne!(a.start_key(), b.start_key());
    }
}
