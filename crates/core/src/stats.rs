//! Operation accounting.
//!
//! The paper's Figure 7(b) reports "the average number of computational
//! operations performed by the scheduling algorithm to schedule a request".
//! Every tree-node visit and structural update in this crate increments a
//! counter in [`OpStats`], so experiments can reproduce that metric without
//! relying on wall-clock noise.

/// Counters for the data-structure work performed by a scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Nodes visited while descending primary trees (Phase 1).
    pub primary_visits: u64,
    /// Nodes visited while searching secondary trees (Phase 2).
    pub secondary_visits: u64,
    /// Nodes visited during insert/remove maintenance of any tree.
    pub update_visits: u64,
    /// Number of Phase-1 invocations.
    pub phase1_searches: u64,
    /// Number of Phase-2 invocations.
    pub phase2_searches: u64,
    /// Scheduling attempts (one per candidate start time tried).
    pub attempts: u64,
    /// Retry attempts skipped because a shifted start provably pushed the
    /// job end past the horizon (or deadline) — the short-circuit avoids
    /// running searches that cannot succeed — or because the capacity
    /// profile rejected the window (`attempts_jumped` breaks out that
    /// subset).
    pub attempts_skipped: u64,
    /// Retry attempts skipped specifically because the free-capacity
    /// profile proved the window infeasible (the jump optimization; a
    /// subset of `attempts_skipped`).
    pub attempts_jumped: u64,
    /// Partial rebuilds triggered by the weight-balance rule.
    pub rebuilds: u64,
    /// Idle periods inserted into slot trees (one count per tree copy
    /// touched, i.e. the physical write amplification).
    pub periods_inserted: u64,
    /// Idle periods removed from slot trees (per tree copy touched).
    pub periods_removed: u64,
    /// Finite idle periods handed to the slot ring (one count per period,
    /// however many trees the coverage spreads it over).
    pub ring_period_inserts: u64,
    /// Finite idle periods removed from the slot ring (per period).
    pub ring_period_removes: u64,
    /// Periods the ring evicted when their last covered slot expired.
    pub ring_evictions: u64,
}

impl OpStats {
    /// A zeroed counter set.
    pub fn new() -> OpStats {
        OpStats::default()
    }

    /// Total operations — the quantity plotted in Figure 7(b).
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.primary_visits + self.secondary_visits + self.update_visits
    }

    /// Search-only operations (excludes structural maintenance).
    #[inline]
    pub fn search_ops(&self) -> u64 {
        self.primary_visits + self.secondary_visits
    }

    /// Element-wise sum `self += delta`; the coordinator-side merge used by
    /// the sharded scheduler to charge per-request probe deltas computed by
    /// shard workers into its own counters.
    pub fn accumulate(&mut self, delta: &OpStats) {
        self.primary_visits += delta.primary_visits;
        self.secondary_visits += delta.secondary_visits;
        self.update_visits += delta.update_visits;
        self.phase1_searches += delta.phase1_searches;
        self.phase2_searches += delta.phase2_searches;
        self.attempts += delta.attempts;
        self.attempts_skipped += delta.attempts_skipped;
        self.attempts_jumped += delta.attempts_jumped;
        self.rebuilds += delta.rebuilds;
        self.periods_inserted += delta.periods_inserted;
        self.periods_removed += delta.periods_removed;
        self.ring_period_inserts += delta.ring_period_inserts;
        self.ring_period_removes += delta.ring_period_removes;
        self.ring_evictions += delta.ring_evictions;
    }

    /// Element-wise difference `self - earlier`; useful for measuring the
    /// cost of a single request.
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            primary_visits: self.primary_visits - earlier.primary_visits,
            secondary_visits: self.secondary_visits - earlier.secondary_visits,
            update_visits: self.update_visits - earlier.update_visits,
            phase1_searches: self.phase1_searches - earlier.phase1_searches,
            phase2_searches: self.phase2_searches - earlier.phase2_searches,
            attempts: self.attempts - earlier.attempts,
            attempts_skipped: self.attempts_skipped - earlier.attempts_skipped,
            attempts_jumped: self.attempts_jumped - earlier.attempts_jumped,
            rebuilds: self.rebuilds - earlier.rebuilds,
            periods_inserted: self.periods_inserted - earlier.periods_inserted,
            periods_removed: self.periods_removed - earlier.periods_removed,
            ring_period_inserts: self.ring_period_inserts - earlier.ring_period_inserts,
            ring_period_removes: self.ring_period_removes - earlier.ring_period_removes,
            ring_evictions: self.ring_evictions - earlier.ring_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_the_visit_counters() {
        let s = OpStats {
            primary_visits: 3,
            secondary_visits: 4,
            update_visits: 5,
            ..OpStats::new()
        };
        assert_eq!(s.total_ops(), 12);
        assert_eq!(s.search_ops(), 7);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = OpStats {
            primary_visits: 10,
            attempts: 2,
            ..OpStats::new()
        };
        let b = OpStats {
            primary_visits: 4,
            attempts: 1,
            ..OpStats::new()
        };
        let d = a.since(&b);
        assert_eq!(d.primary_visits, 6);
        assert_eq!(d.attempts, 1);
        assert_eq!(d.total_ops(), 6);
    }
}
