//! Schedule persistence: checkpoint a running scheduler to a plain-text
//! snapshot and restore it later.
//!
//! A resource manager embedding the scheduler (VCL front-end, PCE, site
//! daemon) must survive restarts without losing "the set of commitments
//! that the system has made" (Section 2). The snapshot records exactly
//! those commitments — configuration, clock, server attributes, and every
//! live reservation — and restore rebuilds the full index state (slot
//! trees, trailing index) from them.
//!
//! A v2 snapshot captures the schedule *and* the period-id assignment:
//! Phase-2 retrieval under a result limit is keyed by `(end, id)`, so ids
//! are decision-relevant state — restore installs them verbatim (tree
//! *shapes* are still regenerated; they affect only performance) and every
//! future decision is bit-identical to the writer's, under every selection
//! policy. Legacy v1 snapshots lack the id assignment; their restores make
//! equivalent (same feasibility) but not necessarily identical choices.
//! Pruned history is not included; utilization accounting restarts from
//! the live reservations.

use crate::attrs::AttrSet;
use crate::idle::IdlePeriod;
use crate::ids::{JobId, PeriodId, ServerId};
use crate::policy::SelectionPolicy;
use crate::scheduler::{CoAllocScheduler, SchedulerConfig};
use crate::time::{Dur, Time};
use crate::timeline::Reservation;

/// Snapshot format version tag. v2 appends an `end <lines> <checksum>`
/// integrity footer so truncation, reordering and bit-rot are detected —
/// this format is the crash-recovery base of the write-ahead log
/// (DESIGN.md §13), so it must reject anything it did not write.
const MAGIC: &str = "coalloc-snapshot v2";

/// The previous, footer-less format: still restorable (leniently) so
/// snapshots written before the WAL existed keep loading.
const MAGIC_V1: &str = "coalloc-snapshot v1";

/// Hostile-input bounds: a snapshot is operator- or network-supplied data,
/// so sizes that would make `restore` allocate unboundedly or loop for
/// minutes are rejected up front rather than trusted.
const MAX_SERVERS: u32 = 1 << 20;
/// Upper bound on the derived slot count `ceil(horizon / tau)`.
const MAX_SLOTS: i64 = 1 << 22;
/// Magnitude bound on every timestamp (≈ 139,000 years in seconds): keeps
/// all downstream slot arithmetic far from `i64` overflow.
const MAX_ABS_TIME: i64 = 1 << 42;
/// Bound on `(now - origin) / tau`: restore replays the clock advance slot
/// by slot, so the span must not encode a multi-minute spin.
const MAX_ADVANCE_SLOTS: i64 = 1 << 21;

/// Errors from [`CoAllocScheduler::restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic/version line.
    BadMagic,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A reservation does not fit the rebuilt timeline (corrupt snapshot).
    InconsistentReservation {
        /// 1-based line number.
        line: usize,
    },
    /// The v2 integrity footer is missing, malformed, or does not match
    /// the content — the snapshot was truncated, reordered or otherwise
    /// altered after it was written.
    Integrity,
    /// A field parsed but its value is outside the bounds a genuine
    /// snapshot can contain (server out of range, absurd horizon, clock
    /// running backwards, colliding job-id sequence, ...).
    Invalid {
        /// 1-based line number (0 when the violation spans lines).
        line: usize,
        /// Which bound was violated.
        what: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a coalloc snapshot (bad header)"),
            SnapshotError::BadLine { line } => write!(f, "snapshot line {line} is malformed"),
            SnapshotError::InconsistentReservation { line } => {
                write!(f, "snapshot line {line}: overlapping or misplaced reservation")
            }
            SnapshotError::Integrity => {
                write!(f, "snapshot integrity footer missing or mismatched (truncated or altered)")
            }
            SnapshotError::Invalid { line, what } => {
                write!(f, "snapshot line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash, the integrity checksum of the v2 footer. Not
/// cryptographic — it detects accidental damage (truncation, reordering,
/// bit-rot), which is the failure model of a state file on local disk.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn policy_code(p: SelectionPolicy) -> u8 {
    match p {
        SelectionPolicy::PaperOrder => 0,
        SelectionPolicy::BestFit => 1,
        SelectionPolicy::WorstFit => 2,
        SelectionPolicy::ByServerId => 3,
    }
}

fn policy_from(code: u8) -> Option<SelectionPolicy> {
    Some(match code {
        0 => SelectionPolicy::PaperOrder,
        1 => SelectionPolicy::BestFit,
        2 => SelectionPolicy::WorstFit,
        3 => SelectionPolicy::ByServerId,
        _ => return None,
    })
}

impl CoAllocScheduler {
    /// Serialize the scheduler's commitments to a text snapshot.
    pub fn snapshot(&self) -> String {
        let cfg = self.config();
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "config {} {} {} {} {} {}\n",
            cfg.tau.secs(),
            cfg.horizon.secs(),
            cfg.delta_t.secs(),
            cfg.r_max.map(|r| r as i64).unwrap_or(-1),
            policy_code(cfg.policy),
            cfg.seed,
        ));
        out.push_str(&format!(
            "clock {} {}\n",
            self.origin().secs(),
            self.now().secs()
        ));
        // Prune timing is observable (a fully-pruned job's `release` turns
        // into `UnknownJob`), so the restored scheduler must resume the
        // same amortized prune cadence as the original.
        out.push_str(&format!("pruned {}\n", self.last_prune().secs()));
        out.push_str(&format!("servers {}\n", self.num_servers()));
        for s in 0..self.num_servers() {
            let a = self.server_attrs(ServerId(s));
            if !a.is_empty() {
                out.push_str(&format!("attrs {s} {}\n", a.0));
            }
        }
        // Idle periods verbatim, ids included: Phase-2 retrieval order
        // under a result limit is keyed by (end, id), so a restore that
        // regenerated ids would make *different* (if equivalent) grants.
        // Bit-identical recovery requires the exact id assignment — and the
        // id counter below it.
        for s in 0..self.num_servers() {
            for p in self.timeline().idle_periods(ServerId(s)) {
                if p.end.is_inf() {
                    out.push_str(&format!("idle {} {s} {} inf\n", p.id.0, p.start.secs()));
                } else {
                    out.push_str(&format!(
                        "idle {} {s} {} {}\n",
                        p.id.0,
                        p.start.secs(),
                        p.end.secs()
                    ));
                }
            }
        }
        // Live reservations, stable order: by server, then start.
        for s in 0..self.num_servers() {
            for r in self.timeline().reservations(ServerId(s)) {
                out.push_str(&format!(
                    "res {} {} {} {}\n",
                    r.job.0,
                    s,
                    r.start.secs(),
                    r.end.secs()
                ));
            }
        }
        out.push_str(&format!("next_period {}\n", self.timeline().next_period_id()));
        out.push_str(&format!("next_job {}\n", self.next_job_id()));
        // Integrity footer: line count and FNV-1a over every preceding byte.
        // Restore refuses a v2 snapshot whose footer does not match, so
        // truncation, reordering and bit-flips are all detected up front.
        let lines = out.lines().count();
        let sum = fnv1a(out.as_bytes());
        out.push_str(&format!("end {lines} {sum:016x}\n"));
        out
    }

    /// Rebuild a scheduler from a snapshot produced by [`Self::snapshot`].
    ///
    /// This is the crash-recovery base image of the WAL, so the input is
    /// treated as hostile: a v2 snapshot must carry a matching integrity
    /// footer, every field is bounds-checked before any internal
    /// constructor (which `assert!` on their invariants) runs, and every
    /// reservation must land on rebuilt idle time. Any deviation returns a
    /// [`SnapshotError`]; no input panics or commits overlapping grants.
    pub fn restore(snapshot: &str) -> Result<CoAllocScheduler, SnapshotError> {
        let all: Vec<&str> = snapshot.lines().collect();
        let magic = all.first().copied().ok_or(SnapshotError::BadMagic)?;
        let body: &[&str] = match magic.trim() {
            MAGIC => {
                // v2: the last line must be a footer matching the rest.
                if all.len() < 2 {
                    return Err(SnapshotError::Integrity);
                }
                let f: Vec<&str> = all[all.len() - 1].split_whitespace().collect();
                if f.len() != 3 || f[0] != "end" {
                    return Err(SnapshotError::Integrity);
                }
                let count: usize = f[1].parse().map_err(|_| SnapshotError::Integrity)?;
                let sum = u64::from_str_radix(f[2], 16).map_err(|_| SnapshotError::Integrity)?;
                let content = &all[..all.len() - 1];
                if count != content.len() {
                    return Err(SnapshotError::Integrity);
                }
                // Hash exactly the bytes `snapshot` hashed: each content
                // line terminated by '\n'. Re-joining also rejects exotic
                // line endings the writer never produces.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for l in content {
                    h = fnv1a_update(h, l.as_bytes());
                    h = fnv1a_update(h, b"\n");
                }
                if h != sum {
                    return Err(SnapshotError::Integrity);
                }
                &all[1..all.len() - 1]
            }
            // v1 (pre-WAL) has no footer; parse leniently but validate the
            // same bounds so a damaged v1 file still cannot panic us.
            MAGIC_V1 => &all[1..],
            _ => return Err(SnapshotError::BadMagic),
        };

        // Phase 1: parse every line into raw integers. Nothing is built yet,
        // so malformed values cannot reach an asserting constructor.
        struct RawConfig {
            line: usize,
            tau: i64,
            horizon: i64,
            delta_t: i64,
            r_max: i64,
            policy: SelectionPolicy,
            seed: u64,
        }
        let mut raw_cfg: Option<RawConfig> = None;
        let mut clock: Option<(usize, i64, i64)> = None;
        let mut pruned: Option<(usize, i64)> = None;
        let mut servers: Option<(usize, u64)> = None;
        let mut attrs: Vec<(usize, u64, u64)> = Vec::new();
        // (line, id, server, start, end) — end None = open-ended.
        let mut idle: Vec<(usize, u64, u64, i64, Option<i64>)> = Vec::new();
        let mut reservations: Vec<(usize, u64, u64, i64, i64)> = Vec::new();
        let mut next_period: Option<u64> = None;
        let mut next_job: u64 = 0;
        for (idx, raw) in body.iter().enumerate() {
            let line_no = idx + 2; // 1-based, after the magic line
            let bad = || SnapshotError::BadLine { line: line_no };
            let fields: Vec<&str> = raw.split_whitespace().collect();
            if fields.is_empty() {
                continue;
            }
            match fields[0] {
                "config" if fields.len() == 7 => {
                    raw_cfg = Some(RawConfig {
                        line: line_no,
                        tau: fields[1].parse().map_err(|_| bad())?,
                        horizon: fields[2].parse().map_err(|_| bad())?,
                        delta_t: fields[3].parse().map_err(|_| bad())?,
                        r_max: fields[4].parse().map_err(|_| bad())?,
                        policy: policy_from(fields[5].parse::<u8>().map_err(|_| bad())?)
                            .ok_or(bad())?,
                        seed: fields[6].parse().map_err(|_| bad())?,
                    });
                }
                "clock" if fields.len() == 3 => {
                    clock = Some((
                        line_no,
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                    ));
                }
                "pruned" if fields.len() == 2 => {
                    pruned = Some((line_no, fields[1].parse().map_err(|_| bad())?));
                }
                "servers" if fields.len() == 2 => {
                    servers = Some((line_no, fields[1].parse().map_err(|_| bad())?));
                }
                "attrs" if fields.len() == 3 => {
                    attrs.push((
                        line_no,
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                    ));
                }
                "idle" if fields.len() == 5 => {
                    let end = if fields[4] == "inf" {
                        None
                    } else {
                        Some(fields[4].parse().map_err(|_| bad())?)
                    };
                    idle.push((
                        line_no,
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                        fields[3].parse().map_err(|_| bad())?,
                        end,
                    ));
                }
                "next_period" if fields.len() == 2 => {
                    next_period = Some(fields[1].parse().map_err(|_| bad())?);
                }
                "res" if fields.len() == 5 => {
                    reservations.push((
                        line_no,
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                        fields[3].parse().map_err(|_| bad())?,
                        fields[4].parse().map_err(|_| bad())?,
                    ));
                }
                "next_job" if fields.len() == 2 => {
                    next_job = fields[1].parse().map_err(|_| bad())?;
                }
                _ => return Err(bad()),
            }
        }

        // Phase 2: bounds-check everything against what a genuine snapshot
        // can contain, in dependency order (config, clock, servers, rest).
        let invalid = |line: usize, what: &'static str| SnapshotError::Invalid { line, what };
        let rc = raw_cfg.ok_or(invalid(0, "missing config line"))?;
        if rc.tau < 1 || rc.tau > MAX_ABS_TIME {
            return Err(invalid(rc.line, "slot width out of range"));
        }
        if rc.horizon < rc.tau || rc.horizon > MAX_ABS_TIME {
            return Err(invalid(rc.line, "horizon out of range"));
        }
        let num_slots = (rc.horizon + rc.tau - 1) / rc.tau;
        if num_slots > MAX_SLOTS {
            return Err(invalid(rc.line, "horizon/tau implies too many slots"));
        }
        if rc.delta_t < 1 || rc.delta_t > MAX_ABS_TIME {
            return Err(invalid(rc.line, "delta_t out of range"));
        }
        if rc.r_max < -1 || rc.r_max > u32::MAX as i64 {
            return Err(invalid(rc.line, "r_max out of range"));
        }
        let (clock_line, origin, now) = clock.unwrap_or((0, 0, 0));
        if origin.abs() > MAX_ABS_TIME || now.abs() > MAX_ABS_TIME {
            return Err(invalid(clock_line, "clock out of range"));
        }
        if now < origin {
            return Err(invalid(clock_line, "clock runs backwards (now < origin)"));
        }
        if (now - origin) / rc.tau > MAX_ADVANCE_SLOTS {
            return Err(invalid(clock_line, "clock span implies too many slot advances"));
        }
        // Absent in v1 (and harmlessly conservative there): prune from the
        // origin, exactly what a freshly built scheduler would do.
        let (pruned_line, last_prune) = pruned.unwrap_or((0, origin));
        if last_prune < origin || last_prune > now {
            return Err(invalid(pruned_line, "prune boundary outside [origin, now]"));
        }
        let (servers_line, n_servers) = servers.ok_or(invalid(0, "missing servers line"))?;
        if n_servers == 0 || n_servers > MAX_SERVERS as u64 {
            return Err(invalid(servers_line, "server count out of range"));
        }
        for &(line, s, _mask) in &attrs {
            if s >= n_servers {
                return Err(invalid(line, "attrs server out of range"));
            }
        }
        // The committed window never extends past `now + Q*tau` (the slot
        // ring rounds the horizon up to whole slots).
        let window_end = now + num_slots * rc.tau;
        for &(line, job, server, start, end) in &reservations {
            if server >= n_servers {
                return Err(invalid(line, "reservation server out of range"));
            }
            if start < origin || end > window_end || start >= end {
                return Err(invalid(line, "reservation interval out of range"));
            }
            if job >= next_job {
                return Err(invalid(line, "reservation job id collides with next_job"));
            }
        }
        // Id-faithful snapshots also carry the idle periods and the
        // period-id counter. Validate their geometry here — one pass over
        // sorted spans, never O(servers × lines) — so the direct installer
        // below cannot be handed an overlap or a missing trailing period.
        let full = !idle.is_empty() || next_period.is_some();
        let np = if full {
            let np = next_period.ok_or(invalid(0, "idle lines without next_period line"))?;
            if idle.is_empty() {
                return Err(invalid(0, "next_period without idle lines"));
            }
            let mut seen_ids = std::collections::HashSet::with_capacity(idle.len());
            // (server, start, end-or-sentinel, line); busy joins the same
            // span list so idle/busy overlap falls out of one sorted scan.
            let mut spans: Vec<(u64, i64, i64, usize)> = Vec::with_capacity(
                idle.len() + reservations.len(),
            );
            let mut trailing = vec![0u32; n_servers as usize];
            for &(line, id, server, start, end) in &idle {
                if server >= n_servers {
                    return Err(invalid(line, "idle server out of range"));
                }
                if id >= np {
                    return Err(invalid(line, "idle period id not below next_period"));
                }
                if !seen_ids.insert(id) {
                    return Err(invalid(line, "duplicate idle period id"));
                }
                if start < origin || start > MAX_ABS_TIME {
                    return Err(invalid(line, "idle period start out of range"));
                }
                match end {
                    Some(e) => {
                        if e <= start || e > window_end {
                            return Err(invalid(line, "idle period interval out of range"));
                        }
                        spans.push((server, start, e, line));
                    }
                    None => {
                        trailing[server as usize] += 1;
                        spans.push((server, start, i64::MAX, line));
                    }
                }
            }
            if trailing.iter().any(|&c| c != 1) {
                return Err(invalid(0, "each server needs exactly one open-ended idle period"));
            }
            for &(line, _, server, start, end) in &reservations {
                spans.push((server, start, end, line));
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[0].0 == w[1].0 && w[1].1 < w[0].2 {
                    return Err(SnapshotError::InconsistentReservation { line: w[1].3 });
                }
            }
            np
        } else {
            0
        };

        // Phase 3: build. Every assert inside these constructors is now
        // unreachable; the only remaining failure is a reservation that
        // does not fit the rebuilt timeline.
        let mut b = SchedulerConfig::builder()
            .tau(Dur(rc.tau))
            .horizon(Dur(rc.horizon))
            .delta_t(Dur(rc.delta_t))
            .policy(rc.policy)
            .seed(rc.seed);
        if rc.r_max >= 0 {
            b = b.r_max(rc.r_max as u32);
        }
        let mut sched = CoAllocScheduler::starting_at(n_servers as u32, Time(origin), b.build());
        for (_, s, mask) in attrs {
            sched.set_server_attrs(ServerId(s as u32), AttrSet(mask));
        }
        // Advance to the snapshot clock *before* re-committing reservations:
        // the live slot window must match the original's, or fragments near
        // the (original) horizon would fall outside the ring and never be
        // mirrored when the window later advances over them.
        sched.advance_to(Time(now));
        sched.set_last_prune(Time(last_prune));
        if full {
            // Id-faithful path: install the persisted idle periods (and the
            // id counter) verbatim and rebuild the indexes from them, so
            // future decisions are bit-identical to the writer's.
            let periods: Vec<IdlePeriod> = idle
                .iter()
                .map(|&(_, id, server, start, end)| IdlePeriod {
                    id: PeriodId(id),
                    server: ServerId(server as u32),
                    start: Time(start),
                    end: end.map(Time).unwrap_or(Time::INF),
                })
                .collect();
            let busy: Vec<Reservation> = reservations
                .iter()
                .map(|&(_, job, server, start, end)| Reservation {
                    job: JobId(job),
                    server: ServerId(server as u32),
                    start: Time(start),
                    end: Time(end),
                })
                .collect();
            sched.install_state(periods, busy, np);
        } else {
            // Legacy (v1) path: re-derive the idle geometry by re-committing
            // each reservation. Equivalent decisions, not bit-identical —
            // period ids are regenerated.
            for (line, job, server, start, end) in reservations {
                sched
                    .restore_reservation(JobId(job), ServerId(server as u32), Time(start), Time(end))
                    .map_err(|_| SnapshotError::InconsistentReservation { line })?;
            }
        }
        sched.set_next_job_id(next_job);
        Ok(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(300))
            .delta_t(Dur(10))
            .policy(SelectionPolicy::ByServerId)
            .build()
    }

    fn busy_scheduler() -> CoAllocScheduler {
        let mut s = CoAllocScheduler::new(4, cfg());
        s.set_server_attrs(ServerId(1), AttrSet(0b101));
        s.submit(&Request::on_demand(Time::ZERO, Dur(50), 2)).unwrap();
        s.submit(&Request::advance(Time::ZERO, Time(100), Dur(30), 3))
            .unwrap();
        s.submit(&Request::advance(Time::ZERO, Time(40), Dur(20), 1))
            .unwrap();
        s
    }

    #[test]
    fn snapshot_restore_roundtrip_is_stable() {
        let s = busy_scheduler();
        let snap1 = s.snapshot();
        let restored = CoAllocScheduler::restore(&snap1).unwrap();
        restored.check_consistency();
        let snap2 = restored.snapshot();
        assert_eq!(snap1, snap2, "snapshot of a restore must be identical");
    }

    #[test]
    fn restored_scheduler_behaves_identically() {
        let mut original = busy_scheduler();
        let mut restored = CoAllocScheduler::restore(&original.snapshot()).unwrap();
        // Same commitments...
        for srv in 0..4 {
            assert_eq!(
                original.timeline().reservations(ServerId(srv)),
                restored.timeline().reservations(ServerId(srv)),
            );
        }
        assert_eq!(restored.server_attrs(ServerId(1)), AttrSet(0b101));
        // ...and identical future decisions (ByServerId policy).
        let probes = [
            Request::on_demand(Time::ZERO, Dur(60), 2),
            Request::advance(Time::ZERO, Time(90), Dur(40), 4),
            Request::on_demand(Time::ZERO, Dur(10), 1),
        ];
        for p in probes {
            let a = original.submit(&p);
            let b = restored.submit(&p);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.start, y.start);
                    assert_eq!(x.servers, y.servers);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("divergence: {other:?}"),
            }
        }
        restored.check_consistency();
    }

    #[test]
    fn job_ids_continue_without_collision() {
        let mut s = busy_scheduler();
        let restored_next = {
            let r = CoAllocScheduler::restore(&s.snapshot()).unwrap();
            r.next_job_id()
        };
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
        assert_eq!(g.job.0, restored_next, "id sequences must align");
    }

    #[test]
    fn clock_and_pruning_survive() {
        let mut s = busy_scheduler();
        s.advance_to(Time(60));
        let restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        assert_eq!(restored.now(), Time(60));
        restored.check_consistency();
    }

    /// Recompute a valid v2 footer for (possibly hand-altered) content, so
    /// tests can reach the semantic checks *behind* the integrity check.
    fn refooter(content: &str) -> String {
        let body: String = content
            .lines()
            .filter(|l| !l.starts_with("end "))
            .map(|l| format!("{l}\n"))
            .collect();
        format!(
            "{body}end {} {:016x}\n",
            body.lines().count(),
            fnv1a(body.as_bytes())
        )
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        assert_eq!(
            CoAllocScheduler::restore("nonsense").unwrap_err(),
            SnapshotError::BadMagic
        );
        let s = busy_scheduler();
        let snap = s.snapshot();
        // Any in-place edit trips the integrity footer before parsing...
        assert_eq!(
            CoAllocScheduler::restore(&snap.replace("servers 4", "servers x")).unwrap_err(),
            SnapshotError::Integrity
        );
        // ...as does appending after the footer.
        assert_eq!(
            CoAllocScheduler::restore(&format!("{snap}res 99 0 0 40\n")).unwrap_err(),
            SnapshotError::Integrity
        );
        // With the footer recomputed, the edits reach the parser/validator.
        assert!(matches!(
            CoAllocScheduler::restore(&refooter(&snap.replace("servers 4", "servers x"))),
            Err(SnapshotError::BadLine { .. })
        ));
        // A duplicated reservation line overlaps itself: rejected, not
        // double-committed (job id stays below next_job, so it passes the
        // collision check and must be caught by the timeline itself).
        let res_line = snap
            .lines()
            .find(|l| l.starts_with("res "))
            .expect("fixture has reservations");
        assert!(matches!(
            CoAllocScheduler::restore(&refooter(&format!("{snap}{res_line}\n"))),
            Err(SnapshotError::InconsistentReservation { .. })
        ));
        // A reservation whose job id is not below next_job is a forgery.
        assert!(matches!(
            CoAllocScheduler::restore(&refooter(&format!("{snap}res 99 3 200 210\n"))),
            Err(SnapshotError::Invalid { .. })
        ));
    }

    #[test]
    fn truncated_and_reordered_snapshots_rejected() {
        let snap = busy_scheduler().snapshot();
        // Dropping any line (including the footer) is detected.
        let n = snap.lines().count();
        for skip in 0..n {
            let mutated: String = snap
                .lines()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let err = CoAllocScheduler::restore(&mutated).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Integrity | SnapshotError::BadMagic),
                "dropping line {skip} gave {err:?}"
            );
        }
        // Swapping two interior lines is detected (order is hashed).
        let mut lines: Vec<&str> = snap.lines().collect();
        lines.swap(1, 2);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(
            CoAllocScheduler::restore(&swapped).unwrap_err(),
            SnapshotError::Integrity
        );
    }

    #[test]
    fn v1_snapshots_still_restore() {
        let s = busy_scheduler();
        let v1: String = s
            .snapshot()
            .lines()
            .filter(|l| !l.starts_with("end "))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            .replace("coalloc-snapshot v2", "coalloc-snapshot v1");
        let restored = CoAllocScheduler::restore(&v1).unwrap();
        restored.check_consistency();
        assert_eq!(restored.snapshot(), s.snapshot(), "v1 upgrade is lossless");
    }

    #[test]
    fn hostile_bounds_rejected_not_panicked() {
        let snap = busy_scheduler().snapshot();
        let cases: &[(&str, &str)] = &[
            // (search, replace) — each would assert or overflow if trusted.
            ("config 10 300", "config 0 300"),    // tau = 0
            ("config 10 300", "config -5 300"),   // tau < 0
            ("config 10 300", "config 10 5"),     // horizon < tau
            ("config 10 300 10", "config 10 300 0"), // delta_t = 0
            ("config 10 300 10", "config 1 4400000000000 10"), // too many slots
            ("servers 4", "servers 0"),
            ("servers 4", "servers 99999999"),
            ("clock 0 0", "clock 0 -10"),         // now < origin
            ("clock 0 0", "clock 0 4400000000000"), // |now| too large
            ("clock 0 0", "clock 0 30000000000"), // huge advance span
            ("pruned 0", "pruned -5"),            // prune boundary < origin
            ("pruned 0", "pruned 5"),             // prune boundary > now
        ];
        for (from, to) in cases {
            let mutated = snap.replace(from, to);
            assert_ne!(&mutated, &snap, "pattern {from:?} must match the fixture");
            let err = CoAllocScheduler::restore(&refooter(&mutated)).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Invalid { .. }),
                "{from:?} -> {to:?} gave {err:?}"
            );
        }
        // Out-of-range attrs / reservation targets.
        for extra in ["attrs 4 1", "res 0 4 200 210", "res 0 0 200 199"] {
            let err = CoAllocScheduler::restore(&refooter(&format!("{snap}{extra}\n")))
                .unwrap_err();
            assert!(
                matches!(err, SnapshotError::Invalid { .. }),
                "{extra:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn restore_rebuilds_segment_coverage() {
        let mut s = busy_scheduler();
        // Rotate the ring first so restore must re-derive canonical slot
        // ranges against a moved base, not just the origin.
        s.advance_to(Time(35));
        let restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        // check_consistency runs SlotRing::check_mirror, which recomputes the
        // canonical decomposition of every covered period from scratch and
        // demands the trees store exactly that (DESIGN.md §12).
        restored.check_consistency();
        assert!(
            s.ring().resident_periods() > 0,
            "fixture must leave finite idle fragments in the ring"
        );
        assert_eq!(
            restored.ring().resident_periods(),
            s.ring().resident_periods(),
            "restore must re-index every finite fragment"
        );
        assert_eq!(
            restored.ring().resident_entries(),
            s.ring().resident_entries(),
            "identical slot ranges must decompose into identical canonical copies"
        );
        assert_eq!(restored.ring().segment_nodes(), s.ring().segment_nodes());
    }

    /// Regression (found by the kill -9 chaos harness): releasing a job
    /// that already ran to completion must remove it from the timeline —
    /// otherwise the snapshot still carries its reservations and a restored
    /// scheduler resurrects the job, answering a second `release` with `ok`
    /// where the original says `UnknownJob`.
    #[test]
    fn released_finished_jobs_stay_released_across_restore() {
        let mut s = CoAllocScheduler::new(2, cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
        s.advance_to(Time(50)); // the job is finished, history not yet pruned
        s.release(g.job).unwrap();
        let mut restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        assert!(
            matches!(restored.release(g.job), Err(ScheduleError::UnknownJob(_))),
            "restored scheduler resurrected a released job"
        );
        assert_eq!(restored.snapshot(), s.snapshot());
        restored.check_consistency();
    }

    /// Prune timing is observable through `release`, so the snapshot pins
    /// it: after history pruning, a finished job is unknown to the original
    /// and to any restored twin alike.
    #[test]
    fn prune_cadence_survives_restore() {
        let mut s = CoAllocScheduler::new(2, cfg());
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 1)).unwrap();
        s.advance_to(Time(330)); // past PRUNE_EVERY_SLOTS * tau: prune fires
        let mut restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        assert!(matches!(s.release(g.job), Err(ScheduleError::UnknownJob(_))));
        assert!(matches!(restored.release(g.job), Err(ScheduleError::UnknownJob(_))));
        assert_eq!(restored.snapshot(), s.snapshot());
        restored.check_consistency();
    }

    #[test]
    fn release_works_on_restored_jobs() {
        let s = busy_scheduler();
        let job = s
            .timeline()
            .reservations(ServerId(0))
            .first()
            .map(|r| r.job)
            .unwrap();
        let mut restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        restored.release(job).unwrap();
        restored.check_consistency();
    }
}
