//! Schedule persistence: checkpoint a running scheduler to a plain-text
//! snapshot and restore it later.
//!
//! A resource manager embedding the scheduler (VCL front-end, PCE, site
//! daemon) must survive restarts without losing "the set of commitments
//! that the system has made" (Section 2). The snapshot records exactly
//! those commitments — configuration, clock, server attributes, and every
//! live reservation — and restore rebuilds the full index state (slot
//! trees, trailing index) from them.
//!
//! The snapshot captures the *schedule*, not internal identifiers: period
//! ids and tree shapes are regenerated, so follow-up behaviour is
//! guaranteed identical under order-independent selection policies
//! (`ByServerId`) and equivalent (same feasibility decisions) under the
//! others. Pruned history is not included; utilization accounting restarts
//! from the live reservations.

use crate::attrs::AttrSet;
use crate::ids::{JobId, ServerId};
use crate::policy::SelectionPolicy;
use crate::scheduler::{CoAllocScheduler, SchedulerConfig};
use crate::time::{Dur, Time};

/// Snapshot format version tag.
const MAGIC: &str = "coalloc-snapshot v1";

/// Errors from [`CoAllocScheduler::restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic/version line.
    BadMagic,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A reservation does not fit the rebuilt timeline (corrupt snapshot).
    InconsistentReservation {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a coalloc snapshot (bad header)"),
            SnapshotError::BadLine { line } => write!(f, "snapshot line {line} is malformed"),
            SnapshotError::InconsistentReservation { line } => {
                write!(f, "snapshot line {line}: overlapping or misplaced reservation")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn policy_code(p: SelectionPolicy) -> u8 {
    match p {
        SelectionPolicy::PaperOrder => 0,
        SelectionPolicy::BestFit => 1,
        SelectionPolicy::WorstFit => 2,
        SelectionPolicy::ByServerId => 3,
    }
}

fn policy_from(code: u8) -> Option<SelectionPolicy> {
    Some(match code {
        0 => SelectionPolicy::PaperOrder,
        1 => SelectionPolicy::BestFit,
        2 => SelectionPolicy::WorstFit,
        3 => SelectionPolicy::ByServerId,
        _ => return None,
    })
}

impl CoAllocScheduler {
    /// Serialize the scheduler's commitments to a text snapshot.
    pub fn snapshot(&self) -> String {
        let cfg = self.config();
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "config {} {} {} {} {} {}\n",
            cfg.tau.secs(),
            cfg.horizon.secs(),
            cfg.delta_t.secs(),
            cfg.r_max.map(|r| r as i64).unwrap_or(-1),
            policy_code(cfg.policy),
            cfg.seed,
        ));
        out.push_str(&format!(
            "clock {} {}\n",
            self.origin().secs(),
            self.now().secs()
        ));
        out.push_str(&format!("servers {}\n", self.num_servers()));
        for s in 0..self.num_servers() {
            let a = self.server_attrs(ServerId(s));
            if !a.is_empty() {
                out.push_str(&format!("attrs {s} {}\n", a.0));
            }
        }
        // Live reservations, stable order: by server, then start.
        for s in 0..self.num_servers() {
            for r in self.timeline().reservations(ServerId(s)) {
                out.push_str(&format!(
                    "res {} {} {} {}\n",
                    r.job.0,
                    s,
                    r.start.secs(),
                    r.end.secs()
                ));
            }
        }
        out.push_str(&format!("next_job {}\n", self.next_job_id()));
        out
    }

    /// Rebuild a scheduler from a snapshot produced by [`Self::snapshot`].
    pub fn restore(snapshot: &str) -> Result<CoAllocScheduler, SnapshotError> {
        let mut lines = snapshot.lines().enumerate();
        let (_, magic) = lines.next().ok_or(SnapshotError::BadMagic)?;
        if magic.trim() != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut cfg: Option<SchedulerConfig> = None;
        let mut origin = Time::ZERO;
        let mut now = Time::ZERO;
        let mut servers = 0u32;
        let mut attrs: Vec<(u32, u64)> = Vec::new();
        let mut reservations: Vec<(usize, u64, u32, i64, i64)> = Vec::new();
        let mut next_job: u64 = 0;
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let bad = || SnapshotError::BadLine { line: line_no };
            let fields: Vec<&str> = raw.split_whitespace().collect();
            if fields.is_empty() {
                continue;
            }
            match fields[0] {
                "config" if fields.len() == 7 => {
                    let p =
                        policy_from(fields[5].parse::<u8>().map_err(|_| bad())?).ok_or(bad())?;
                    let r_max: i64 = fields[4].parse().map_err(|_| bad())?;
                    let mut b = SchedulerConfig::builder()
                        .tau(Dur(fields[1].parse().map_err(|_| bad())?))
                        .horizon(Dur(fields[2].parse().map_err(|_| bad())?))
                        .delta_t(Dur(fields[3].parse().map_err(|_| bad())?))
                        .policy(p)
                        .seed(fields[6].parse().map_err(|_| bad())?);
                    if r_max >= 0 {
                        b = b.r_max(r_max as u32);
                    }
                    cfg = Some(b.build());
                }
                "clock" if fields.len() == 3 => {
                    origin = Time(fields[1].parse().map_err(|_| bad())?);
                    now = Time(fields[2].parse().map_err(|_| bad())?);
                }
                "servers" if fields.len() == 2 => {
                    servers = fields[1].parse().map_err(|_| bad())?;
                }
                "attrs" if fields.len() == 3 => {
                    attrs.push((
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                    ));
                }
                "res" if fields.len() == 5 => {
                    reservations.push((
                        line_no,
                        fields[1].parse().map_err(|_| bad())?,
                        fields[2].parse().map_err(|_| bad())?,
                        fields[3].parse().map_err(|_| bad())?,
                        fields[4].parse().map_err(|_| bad())?,
                    ));
                }
                "next_job" if fields.len() == 2 => {
                    next_job = fields[1].parse().map_err(|_| bad())?;
                }
                _ => return Err(bad()),
            }
        }
        let cfg = cfg.ok_or(SnapshotError::BadMagic)?;
        if servers == 0 {
            return Err(SnapshotError::BadMagic);
        }
        let mut sched = CoAllocScheduler::starting_at(servers, origin, cfg);
        for (s, mask) in attrs {
            sched.set_server_attrs(ServerId(s), AttrSet(mask));
        }
        // Advance to the snapshot clock *before* re-committing reservations:
        // the live slot window must match the original's, or fragments near
        // the (original) horizon would fall outside the ring and never be
        // mirrored when the window later advances over them.
        sched.advance_to(now);
        for (line, job, server, start, end) in reservations {
            sched
                .restore_reservation(JobId(job), ServerId(server), Time(start), Time(end))
                .map_err(|_| SnapshotError::InconsistentReservation { line })?;
        }
        sched.set_next_job_id(next_job);
        Ok(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig::builder()
            .tau(Dur(10))
            .horizon(Dur(300))
            .delta_t(Dur(10))
            .policy(SelectionPolicy::ByServerId)
            .build()
    }

    fn busy_scheduler() -> CoAllocScheduler {
        let mut s = CoAllocScheduler::new(4, cfg());
        s.set_server_attrs(ServerId(1), AttrSet(0b101));
        s.submit(&Request::on_demand(Time::ZERO, Dur(50), 2)).unwrap();
        s.submit(&Request::advance(Time::ZERO, Time(100), Dur(30), 3))
            .unwrap();
        s.submit(&Request::advance(Time::ZERO, Time(40), Dur(20), 1))
            .unwrap();
        s
    }

    #[test]
    fn snapshot_restore_roundtrip_is_stable() {
        let s = busy_scheduler();
        let snap1 = s.snapshot();
        let restored = CoAllocScheduler::restore(&snap1).unwrap();
        restored.check_consistency();
        let snap2 = restored.snapshot();
        assert_eq!(snap1, snap2, "snapshot of a restore must be identical");
    }

    #[test]
    fn restored_scheduler_behaves_identically() {
        let mut original = busy_scheduler();
        let mut restored = CoAllocScheduler::restore(&original.snapshot()).unwrap();
        // Same commitments...
        for srv in 0..4 {
            assert_eq!(
                original.timeline().reservations(ServerId(srv)),
                restored.timeline().reservations(ServerId(srv)),
            );
        }
        assert_eq!(restored.server_attrs(ServerId(1)), AttrSet(0b101));
        // ...and identical future decisions (ByServerId policy).
        let probes = [
            Request::on_demand(Time::ZERO, Dur(60), 2),
            Request::advance(Time::ZERO, Time(90), Dur(40), 4),
            Request::on_demand(Time::ZERO, Dur(10), 1),
        ];
        for p in probes {
            let a = original.submit(&p);
            let b = restored.submit(&p);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.start, y.start);
                    assert_eq!(x.servers, y.servers);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("divergence: {other:?}"),
            }
        }
        restored.check_consistency();
    }

    #[test]
    fn job_ids_continue_without_collision() {
        let mut s = busy_scheduler();
        let restored_next = {
            let r = CoAllocScheduler::restore(&s.snapshot()).unwrap();
            r.next_job_id()
        };
        let g = s.submit(&Request::on_demand(Time::ZERO, Dur(10), 1)).unwrap();
        assert_eq!(g.job.0, restored_next, "id sequences must align");
    }

    #[test]
    fn clock_and_pruning_survive() {
        let mut s = busy_scheduler();
        s.advance_to(Time(60));
        let restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        assert_eq!(restored.now(), Time(60));
        restored.check_consistency();
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        assert_eq!(
            CoAllocScheduler::restore("nonsense").unwrap_err(),
            SnapshotError::BadMagic
        );
        let s = busy_scheduler();
        let snap = s.snapshot();
        let truncated = snap.replace("servers 4", "servers x");
        assert!(matches!(
            CoAllocScheduler::restore(&truncated),
            Err(SnapshotError::BadLine { .. })
        ));
        // Overlapping reservation injected.
        let evil = format!("{snap}res 99 0 0 40\n");
        assert!(matches!(
            CoAllocScheduler::restore(&evil),
            Err(SnapshotError::InconsistentReservation { .. })
        ));
    }

    #[test]
    fn restore_rebuilds_segment_coverage() {
        let mut s = busy_scheduler();
        // Rotate the ring first so restore must re-derive canonical slot
        // ranges against a moved base, not just the origin.
        s.advance_to(Time(35));
        let restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        // check_consistency runs SlotRing::check_mirror, which recomputes the
        // canonical decomposition of every covered period from scratch and
        // demands the trees store exactly that (DESIGN.md §12).
        restored.check_consistency();
        assert!(
            s.ring().resident_periods() > 0,
            "fixture must leave finite idle fragments in the ring"
        );
        assert_eq!(
            restored.ring().resident_periods(),
            s.ring().resident_periods(),
            "restore must re-index every finite fragment"
        );
        assert_eq!(
            restored.ring().resident_entries(),
            s.ring().resident_entries(),
            "identical slot ranges must decompose into identical canonical copies"
        );
        assert_eq!(restored.ring().segment_nodes(), s.ring().segment_nodes());
    }

    #[test]
    fn release_works_on_restored_jobs() {
        let s = busy_scheduler();
        let job = s
            .timeline()
            .reservations(ServerId(0))
            .first()
            .map(|r| r.job)
            .unwrap();
        let mut restored = CoAllocScheduler::restore(&s.snapshot()).unwrap();
        restored.release(job).unwrap();
        restored.check_consistency();
    }
}
