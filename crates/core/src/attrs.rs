//! Attribute-constrained co-allocation.
//!
//! The VCL application (Section 3.1) dispatches resources "customized to a
//! set of specific requirements" — GPU nodes, big-memory nodes, specific OS
//! images. This module adds capability tags to servers and a constrained
//! submission path that co-allocates only among servers carrying all the
//! required tags. It composes with the range-search flow exactly as the
//! paper envisions: the two-phase search over-approximates (Phase-1 counts
//! ignore constraints), and the retrieval step filters — "users may use
//! sophisticated post-processing techniques to optimize the selection of
//! resources based on their requirements".

use crate::error::ScheduleError;
use crate::idle::IdlePeriod;
use crate::ids::ServerId;
use crate::range_search::Availability;
use crate::request::Request;
use crate::scheduler::{CoAllocScheduler, Grant};
use crate::time::Time;

/// A set of capability tags, as a 64-bit mask. Applications assign meaning
/// to bits (e.g. bit 0 = GPU, bit 1 = big-mem).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct AttrSet(pub u64);

impl AttrSet {
    /// The empty set (no capabilities).
    pub const NONE: AttrSet = AttrSet(0);

    /// A set with the single tag `bit` (0..64).
    pub fn tag(bit: u32) -> AttrSet {
        assert!(bit < 64, "tag bits range over 0..64");
        AttrSet(1 << bit)
    }

    /// Union of two sets.
    #[must_use]
    pub fn with(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Does this set contain every tag in `required`?
    pub fn satisfies(self, required: AttrSet) -> bool {
        self.0 & required.0 == required.0
    }

    /// Number of tags set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no tags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl CoAllocScheduler {
    /// Handle a request that may only use servers satisfying `required`
    /// (every tag in `required` present on the server).
    ///
    /// Semantics match [`Self::submit`] — including the `Delta_t`/`R_max`
    /// retry loop — restricted to the qualifying subset of servers. With
    /// `required == AttrSet::NONE` this is exactly `submit` with full
    /// enumeration.
    pub fn submit_constrained(
        &mut self,
        req: &Request,
        required: AttrSet,
    ) -> Result<Grant, ScheduleError> {
        req.validate()?;
        let qualifying = (0..self.num_servers())
            .filter(|&s| self.server_attrs(ServerId(s)).satisfies(required))
            .count() as u32;
        if req.servers > qualifying {
            return Err(ScheduleError::TooManyServers {
                requested: req.servers,
                available: qualifying,
            });
        }
        let earliest = req.earliest_start.max(self.now());
        let r_max = self.config().effective_r_max();
        let delta_t = self.config().delta_t;
        let policy = self.config().policy;
        let mut attempts = 0u32;
        let mut start = earliest;
        loop {
            let end = start + req.duration;
            if end > self.horizon_end() {
                return Err(ScheduleError::HorizonExceeded {
                    horizon_end: self.horizon_end(),
                });
            }
            attempts += 1;
            self.bump_attempts();
            // Full enumeration, then constraint filtering (the paper's
            // post-processing step), then policy selection.
            let feasible: Vec<IdlePeriod> = self
                .enumerate_feasible(start, end)
                .into_iter()
                .filter(|p| self.server_attrs(p.server).satisfies(required))
                .collect();
            if feasible.len() >= req.servers as usize {
                let chosen = policy.select(feasible, req.servers as usize, end);
                return Ok(self.commit_with_attempts(&chosen, start, end, attempts, earliest));
            }
            if attempts > r_max {
                return Err(ScheduleError::Exhausted {
                    attempts,
                    last_tried: start,
                });
            }
            start += delta_t;
        }
    }

    /// Range search restricted to servers satisfying `required`.
    pub fn range_search_constrained(
        &mut self,
        start: Time,
        end: Time,
        required: AttrSet,
    ) -> Vec<Availability> {
        self.range_search(start, end)
            .into_iter()
            .filter(|a| self.server_attrs(a.period.server).satisfies(required))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    const GPU: AttrSet = AttrSet(0b01);
    const BIGMEM: AttrSet = AttrSet(0b10);

    fn sched() -> CoAllocScheduler {
        let mut s = CoAllocScheduler::new(
            6,
            SchedulerConfig::builder()
                .tau(Dur(10))
                .horizon(Dur(200))
                .delta_t(Dur(10))
                .build(),
        );
        // Servers 0-1: GPU; 2-3: big-mem; 4: both; 5: plain.
        s.set_server_attrs(ServerId(0), GPU);
        s.set_server_attrs(ServerId(1), GPU);
        s.set_server_attrs(ServerId(2), BIGMEM);
        s.set_server_attrs(ServerId(3), BIGMEM);
        s.set_server_attrs(ServerId(4), GPU.with(BIGMEM));
        s
    }

    #[test]
    fn attr_set_algebra() {
        assert!(GPU.with(BIGMEM).satisfies(GPU));
        assert!(GPU.with(BIGMEM).satisfies(BIGMEM));
        assert!(!GPU.satisfies(BIGMEM));
        assert!(GPU.satisfies(AttrSet::NONE));
        assert_eq!(AttrSet::tag(0), GPU);
        assert_eq!(GPU.with(BIGMEM).len(), 2);
        assert!(AttrSet::NONE.is_empty());
    }

    #[test]
    fn constrained_submit_uses_only_qualifying_servers() {
        let mut s = sched();
        let g = s
            .submit_constrained(&Request::on_demand(Time::ZERO, Dur(50), 3), GPU)
            .unwrap();
        let mut servers = g.servers.clone();
        servers.sort();
        assert_eq!(servers, vec![ServerId(0), ServerId(1), ServerId(4)]);
        s.check_consistency();
    }

    #[test]
    fn over_demand_of_a_capability_is_rejected_up_front() {
        let mut s = sched();
        let err = s
            .submit_constrained(&Request::on_demand(Time::ZERO, Dur(10), 4), GPU)
            .unwrap_err();
        assert_eq!(
            err,
            ScheduleError::TooManyServers {
                requested: 4,
                available: 3
            }
        );
    }

    #[test]
    fn constraint_contention_shifts_in_time_not_onto_wrong_servers() {
        let mut s = sched();
        // Take all three GPU servers for [0, 50).
        s.submit_constrained(&Request::on_demand(Time::ZERO, Dur(50), 3), GPU)
            .unwrap();
        // Plain capacity is still free, but a GPU job must wait.
        let g = s
            .submit_constrained(&Request::on_demand(Time::ZERO, Dur(20), 2), GPU)
            .unwrap();
        assert_eq!(g.start, Time(50));
        // Meanwhile an unconstrained job runs immediately on the free pool.
        let g2 = s.submit(&Request::on_demand(Time::ZERO, Dur(20), 3)).unwrap();
        assert_eq!(g2.start, Time::ZERO);
        s.check_consistency();
    }

    #[test]
    fn multi_tag_requirement_intersects() {
        let mut s = sched();
        let g = s
            .submit_constrained(&Request::on_demand(Time::ZERO, Dur(10), 1), GPU.with(BIGMEM))
            .unwrap();
        assert_eq!(g.servers, vec![ServerId(4)]);
        // A second both-tags job must queue behind the only qualifying box.
        let g2 = s
            .submit_constrained(&Request::on_demand(Time::ZERO, Dur(10), 1), GPU.with(BIGMEM))
            .unwrap();
        assert_eq!(g2.start, Time(10));
    }

    #[test]
    fn none_constraint_equals_plain_submit() {
        let mut a = sched();
        let mut b = sched();
        let req = Request::on_demand(Time::ZERO, Dur(30), 4);
        let ga = a.submit_constrained(&req, AttrSet::NONE).unwrap();
        let gb = b.submit(&req).unwrap();
        assert_eq!(ga.start, gb.start);
        assert_eq!(ga.servers.len(), gb.servers.len());
    }

    #[test]
    fn constrained_range_search_filters() {
        let mut s = sched();
        let all = s.range_search(Time(10), Time(30));
        assert_eq!(all.len(), 6);
        let gpus = s.range_search_constrained(Time(10), Time(30), GPU);
        assert_eq!(gpus.len(), 3);
        let both = s.range_search_constrained(Time(10), Time(30), GPU.with(BIGMEM));
        assert_eq!(both.len(), 1);
    }
}
