//! Reusable hot-path buffers.
//!
//! Every scheduling attempt needs a handful of temporary vectors: the
//! Phase-1 marked-node list, the Phase-2 candidate-id and feasible-period
//! buffers, the root-to-leaf path of a tree update, and the leaf/end-key
//! staging areas of a partial rebuild. Allocating them per call dominates
//! the per-request cost once the trees are warm, so the scheduler threads a
//! single [`Scratch`] through [`crate::primary::SlotTree`],
//! [`crate::ring::SlotRing`] and [`crate::timeline::Timeline`] instead: each
//! buffer is cleared (an `O(1)` length reset) and refilled in place, and in
//! steady state — once every buffer has grown to its high-water mark — the
//! reject path of a request performs **zero** heap allocations.

use crate::idle::{EndKey, IdlePeriod};
use crate::ids::PeriodId;
use crate::primary::MarkedNode;
use crate::ring::StabMarks;
use crate::timeline::PeriodDelta;

/// Reusable buffers for the allocation-free scheduling hot path.
///
/// A `Scratch` is plain data: dropping it or creating a fresh one is always
/// correct, only slower. Buffers never carry information between calls —
/// every user clears what it fills — so a single instance may be shared
/// across all trees of a ring and all phases of a request.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Phase-1 output: subtrees whose periods are all candidates.
    pub marked: Vec<MarkedNode>,
    /// Phase-1 output of a stabbing-path query: the per-tree marked
    /// segments along the segment-tree path (see [`StabMarks`]).
    pub stab: StabMarks,
    /// Canonical segment-tree nodes of the period currently being inserted
    /// or removed (at most `2 log2(Q) + 2` entries).
    pub canon: Vec<u32>,
    /// Phase-2 output: feasible period ids, retrieval order.
    pub ids: Vec<PeriodId>,
    /// Feasible periods resolved from [`Scratch::ids`], then reduced in
    /// place by the selection policy.
    pub feasible: Vec<IdlePeriod>,
    /// Root-to-leaf path of the current primary-tree update.
    pub path: Vec<u32>,
    /// Leaves collected while flattening a subtree for rebuild.
    pub leaves: Vec<IdlePeriod>,
    /// End-key stack of the bottom-up rebuild: each recursion level leaves
    /// its subtree's sorted end keys on top.
    pub ends: Vec<EndKey>,
    /// Merge buffer for combining two adjacent sorted runs of `ends`.
    pub ends_aux: Vec<EndKey>,
    /// Reusable timeline delta (see [`crate::timeline::Timeline::reserve_into`]).
    pub delta: PeriodDelta,
}

impl Scratch {
    /// Fresh, empty scratch space. No allocation happens until first use.
    pub fn new() -> Scratch {
        Scratch::default()
    }
}
