//! Global index of *open-ended trailing* idle periods.
//!
//! Every server's schedule ends with an idle period that extends to the
//! (moving) horizon — `[st, INF)`. Storing these physically in every slot
//! tree would make each reservation cost `O(Q log^2 N)` just to move one
//! trailing period, and would contradict the paper's claim that discarding
//! an expired slot tree and creating the new horizon-edge tree "take O(1)
//! time" (Section 4.1): a brand-new edge tree can only be O(1) if the
//! trailing periods that overlap it are represented *virtually*.
//!
//! This module is that virtual representation: one order-statistic treap
//! over all trailing periods, keyed by descending starting time. A trailing
//! period is a Phase-1 candidate iff `st <= s_r` and — since `et = INF` — it
//! is then automatically Phase-2 feasible for any window, so a single
//! `O(log N)` count/collect replaces the per-slot search, and moving a
//! trailing period on commit costs `O(log N)` instead of `O(Q log^2 N)`.
//! Finite idle periods (bounded by reservations on both sides) continue to
//! live in the slotted 2-dimensional trees.

use crate::idle::{IdlePeriod, StartKey};
use crate::ids::PeriodId;
use crate::stats::OpStats;
use crate::time::Time;
use crate::treap::{Treap, TreapArena};

/// The set of open-ended trailing idle periods, one per server.
#[derive(Clone, Debug)]
pub struct TrailingSet {
    arena: TreapArena<StartKey>,
    treap: Treap,
}

impl TrailingSet {
    /// An empty set; `seed` fixes the treap shape.
    pub fn new(seed: u64) -> TrailingSet {
        TrailingSet {
            arena: TreapArena::new(seed ^ 0x7A11),
            treap: Treap::new(),
        }
    }

    /// Number of trailing periods (equals the server count in a consistent
    /// scheduler).
    pub fn len(&self) -> usize {
        self.treap.len(&self.arena)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.treap.is_empty()
    }

    /// Index a trailing period. Panics (debug) on finite periods.
    pub fn insert(&mut self, p: &IdlePeriod, ops: &mut OpStats) {
        debug_assert!(p.end.is_inf(), "trailing set only holds open periods");
        ops.periods_inserted += 1;
        self.treap.insert(&mut self.arena, p.start_key(), ops);
    }

    /// Remove a trailing period; returns whether it was present.
    pub fn remove(&mut self, p: &IdlePeriod, ops: &mut OpStats) -> bool {
        debug_assert!(p.end.is_inf(), "trailing set only holds open periods");
        let removed = self.treap.remove(&mut self.arena, p.start_key(), ops);
        if removed {
            ops.periods_removed += 1;
        }
        removed
    }

    fn floor(start: Time) -> StartKey {
        StartKey {
            start,
            id: PeriodId(0),
        }
    }

    /// Count the trailing periods with `st <= start` — all of them are
    /// feasible for any window beginning at `start`. `O(log N)`.
    pub fn count_candidates(&self, start: Time, ops: &mut OpStats) -> usize {
        self.treap.count_ge(&self.arena, Self::floor(start), ops)
    }

    /// Append up to `limit` candidate period ids into `out`, latest starting
    /// times first (the paper's reverse-marking retrieval order).
    pub fn collect_candidates(
        &self,
        start: Time,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) -> usize {
        self.treap
            .collect_ge(&self.arena, Self::floor(start), limit, out, ops)
    }

    /// All stored period ids (test helper), in descending start order.
    pub fn ids_in_order(&self) -> Vec<PeriodId> {
        self.treap
            .keys_in_order(&self.arena)
            .iter()
            .map(|k| k.id)
            .collect()
    }

    /// Validate treap invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.treap.check_invariants(&self.arena);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    fn p(id: u64, server: u32, start: i64) -> IdlePeriod {
        IdlePeriod {
            id: PeriodId(id),
            server: ServerId(server),
            start: Time(start),
            end: Time::INF,
        }
    }

    #[test]
    fn counts_candidates_by_start() {
        let mut ts = TrailingSet::new(1);
        let mut ops = OpStats::new();
        for (i, s) in [(1u64, 4i64), (2, 16), (3, 7), (4, 1)] {
            ts.insert(&p(i, i as u32, s), &mut ops);
        }
        ts.check_invariants();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.count_candidates(Time(17), &mut ops), 4);
        assert_eq!(ts.count_candidates(Time(5), &mut ops), 2);
        assert_eq!(ts.count_candidates(Time(0), &mut ops), 0);
    }

    #[test]
    fn collects_latest_starts_first() {
        let mut ts = TrailingSet::new(1);
        let mut ops = OpStats::new();
        for (i, s) in [(1u64, 4i64), (2, 16), (3, 7), (4, 1)] {
            ts.insert(&p(i, i as u32, s), &mut ops);
        }
        let mut out = Vec::new();
        ts.collect_candidates(Time(10), 2, &mut out, &mut ops);
        assert_eq!(out, vec![PeriodId(3), PeriodId(1)]); // starts 7, then 4
    }

    #[test]
    fn remove_roundtrip() {
        let mut ts = TrailingSet::new(2);
        let mut ops = OpStats::new();
        let a = p(1, 0, 5);
        ts.insert(&a, &mut ops);
        assert!(ts.remove(&a, &mut ops));
        assert!(!ts.remove(&a, &mut ops));
        assert!(ts.is_empty());
    }

    #[test]
    fn update_cost_is_logarithmic_not_q_dependent() {
        let mut ts = TrailingSet::new(3);
        let mut ops = OpStats::new();
        for i in 0..1024u64 {
            ts.insert(&p(i, i as u32, i as i64), &mut ops);
        }
        let before = ops.update_visits;
        ts.remove(&p(512, 512, 512), &mut ops);
        ts.insert(&p(2000, 512, 700), &mut ops);
        let cost = ops.update_visits - before;
        assert!(cost < 200, "trailing move cost {cost} should be O(log N)");
    }
}
