//! Selection policies: which `n_r` of the feasible idle periods to allocate.
//!
//! The paper retrieves the first `n_r` feasible periods found when searching
//! the marked subtrees in reverse marking order — i.e. candidates with the
//! *latest* starting times first ([`SelectionPolicy::PaperOrder`]). Raw
//! retrieval order is tree-shape dependent among equal start times, so this
//! crate canonicalises it to the total key *(start desc, server asc, id)*:
//! the same latest-start-first intent, but deterministic regardless of tree
//! shape — and therefore identical between the single scheduler and any
//! sharded partition of the servers. Because the choice shapes future
//! fragmentation, the crate also offers classic best-fit and worst-fit
//! variants as ablations, plus a deterministic order-independent policy used
//! for oracle testing.

use crate::idle::IdlePeriod;
use crate::time::Time;

/// How the scheduler picks `n_r` periods out of the feasible set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Latest starting times first (the paper's behaviour), canonicalised to
    /// the total key *(start desc, server asc, id)* so the selection does not
    /// depend on tree shape or server partitioning.
    #[default]
    PaperOrder,
    /// Minimize leftover tail `et_i - e_r`: keeps large idle periods intact
    /// at the cost of enumerating the whole feasible set.
    BestFit,
    /// Maximize leftover tail: spreads load, fragments large periods.
    WorstFit,
    /// Lowest server id first. Deterministic regardless of tree shape; used
    /// to prove equivalence between the tree-based and naive schedulers.
    ByServerId,
}

impl SelectionPolicy {
    /// Reduce `feasible` (already feasibility-checked) to at most `n`
    /// periods according to the policy. `end` is the job end `e_r`.
    /// `feasible` arrives in the order Phase 2 produced it.
    pub fn select(&self, mut feasible: Vec<IdlePeriod>, n: usize, end: Time) -> Vec<IdlePeriod> {
        self.select_in_place(&mut feasible, n, end);
        feasible
    }

    /// In-place variant of [`SelectionPolicy::select`] for the allocation-free
    /// hot path. Every sort key is total (the period id breaks ties), so the
    /// unstable in-place sort is deterministic.
    pub fn select_in_place(&self, feasible: &mut Vec<IdlePeriod>, n: usize, end: Time) {
        match self {
            SelectionPolicy::PaperOrder => {
                feasible.sort_unstable_by_key(|p| (std::cmp::Reverse(p.start), p.server, p.id));
            }
            SelectionPolicy::BestFit => {
                feasible.sort_unstable_by_key(|p| (p.end - end, p.server, p.id));
            }
            SelectionPolicy::WorstFit => {
                feasible.sort_unstable_by_key(|p| (std::cmp::Reverse(p.end - end), p.server, p.id));
            }
            SelectionPolicy::ByServerId => {
                feasible.sort_unstable_by_key(|p| (p.server, p.id));
            }
        }
        feasible.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PeriodId, ServerId};

    fn p(id: u64, server: u32, start: i64, end: i64) -> IdlePeriod {
        IdlePeriod {
            id: PeriodId(id),
            server: ServerId(server),
            start: Time(start),
            end: Time(end),
        }
    }

    fn sample() -> Vec<IdlePeriod> {
        vec![p(1, 3, 0, 50), p(2, 1, 5, 30), p(3, 2, 2, 90), p(4, 0, 1, 40)]
    }

    #[test]
    fn paper_order_takes_latest_starts_first() {
        // Starts: id1→0, id2→5, id3→2, id4→1; latest two are ids 2 and 3.
        let sel = SelectionPolicy::PaperOrder.select(sample(), 2, Time(20));
        assert_eq!(sel.iter().map(|x| x.id.0).collect::<Vec<_>>(), vec![2, 3]);
        // Order independence: reversing the input changes nothing.
        let mut shuffled = sample();
        shuffled.reverse();
        let again = SelectionPolicy::PaperOrder.select(shuffled, 2, Time(20));
        assert_eq!(sel, again);
    }

    #[test]
    fn best_fit_minimizes_tail() {
        let sel = SelectionPolicy::BestFit.select(sample(), 2, Time(20));
        // Tails: 30, 10, 70, 20 → picks ends 30 (id 2) then 40 (id 4).
        assert_eq!(sel.iter().map(|x| x.id.0).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn worst_fit_maximizes_tail() {
        let sel = SelectionPolicy::WorstFit.select(sample(), 2, Time(20));
        assert_eq!(sel.iter().map(|x| x.id.0).collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn by_server_id_is_order_independent() {
        let mut shuffled = sample();
        shuffled.reverse();
        let a = SelectionPolicy::ByServerId.select(sample(), 3, Time(20));
        let b = SelectionPolicy::ByServerId.select(shuffled, 3, Time(20));
        assert_eq!(a, b);
        assert_eq!(a[0].server, ServerId(0));
    }

    #[test]
    fn selecting_more_than_available_returns_all() {
        let sel = SelectionPolicy::BestFit.select(sample(), 10, Time(20));
        assert_eq!(sel.len(), 4);
    }
}
