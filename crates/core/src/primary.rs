//! The 2-dimensional tree of one slot: primary tree `T_q^s` over starting
//! times (descending) with a secondary tree `T_q^e(u)` per internal node.
//!
//! The paper stores idle periods in the *leaves* of a balanced search tree;
//! every internal node `u` records the median starting time, the size of its
//! subtree, and a pointer to a secondary tree holding the same periods in
//! ascending ending-time order (Section 4.1).
//!
//! Rotations would invalidate the "secondary tree contains exactly `u`'s
//! subtree" invariant, so — as in classical dynamic range trees — balance is
//! maintained by *partial rebuilds* (scapegoat / weight-balanced style):
//! an insert or delete walks one root-to-leaf path, updating each ancestor's
//! secondary tree in `O(log n)`, and occasionally flattens and rebuilds the
//! highest unbalanced subtree, which is `O(k log k)` for a subtree of `k`
//! leaves and amortizes to `O(log^2 n)` per update.

use crate::idle::{EndKey, IdlePeriod, StartKey};
use crate::ids::PeriodId;
use crate::scratch::Scratch;
use crate::stats::OpStats;
use crate::time::Time;
use crate::treap::{Treap, TreapArena};

const NIL: u32 = u32::MAX;

/// Weight-balance parameter: a subtree is rebuilt when one child holds more
/// than `ALPHA` of its weight. 0.7 trades rebuild frequency against height
/// (height <= log_{1/0.7} n ~ 1.94 log2 n).
const ALPHA_NUM: u64 = 7;
const ALPHA_DEN: u64 = 10;

#[derive(Clone, Debug)]
enum PNode {
    Leaf {
        period: IdlePeriod,
    },
    Internal {
        left: u32,
        right: u32,
        size: u32,
        /// Key of the last leaf (in descending-start order) of the left
        /// subtree; partitions the key space: left keys `<= split`, right
        /// keys `> split`. Plays the role of the paper's "median starting
        /// time". The bound may become stale after deletions but remains a
        /// valid partition.
        split: StartKey,
        secondary: Treap,
    },
    /// Free-list tombstone.
    Free,
}

/// A reference to a subtree marked during Phase 1; all idle periods below a
/// marked node are *candidates* (`st_i <= s_r`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarkedNode(u32);

/// The 2-dimensional tree for one slot.
#[derive(Clone, Debug)]
pub struct SlotTree {
    nodes: Vec<PNode>,
    free: Vec<u32>,
    root: u32,
    arena: TreapArena<EndKey>,
    size: u32,
    /// High-water mark since the last full rebuild, for the scapegoat
    /// deletion rule.
    max_size_since_rebuild: u32,
}

impl SlotTree {
    /// An empty tree; `seed` determines the (deterministic) secondary-treap
    /// shapes.
    pub fn new(seed: u64) -> SlotTree {
        SlotTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            arena: TreapArena::new(seed),
            size: 0,
            max_size_since_rebuild: 0,
        }
    }

    /// Build directly from an owned list of periods (used when a slot tree
    /// must be seeded wholesale, e.g. on snapshot restore). Takes ownership
    /// so the periods are sorted in place — no intermediate copy. `O(k log k)`.
    pub fn from_periods(seed: u64, mut periods: Vec<IdlePeriod>, ops: &mut OpStats) -> SlotTree {
        let mut tree = SlotTree::new(seed);
        periods.sort_unstable_by_key(|p| p.start_key());
        tree.size = periods.len() as u32;
        tree.max_size_since_rebuild = tree.size;
        ops.periods_inserted += periods.len() as u64;
        let mut scratch = Scratch::new();
        tree.root = tree.build_balanced(&periods, &mut scratch.ends, &mut scratch.ends_aux, ops);
        tree
    }

    /// Number of idle periods stored.
    pub fn len(&self) -> usize {
        self.size as usize
    }

    /// Whether the tree stores no periods.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    // ------------------------------------------------------------------
    // Allocation helpers
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: PNode) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn dealloc(&mut self, i: u32) {
        if let PNode::Internal { mut secondary, .. } =
            std::mem::replace(&mut self.nodes[i as usize], PNode::Free)
        {
            secondary.clear(&mut self.arena);
        }
        self.free.push(i);
    }

    fn node_size(&self, i: u32) -> u32 {
        match &self.nodes[i as usize] {
            PNode::Leaf { .. } => 1,
            PNode::Internal { size, .. } => *size,
            PNode::Free => unreachable!("size of freed node"),
        }
    }

    // ------------------------------------------------------------------
    // Insert / remove
    // ------------------------------------------------------------------

    /// Insert an idle period. Amortized `O(log^2 n)`.
    ///
    /// Convenience wrapper over [`SlotTree::insert_with`] that allocates its
    /// own temporaries; the scheduler hot path threads a shared [`Scratch`]
    /// instead.
    pub fn insert(&mut self, period: IdlePeriod, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.insert_with(period, &mut scratch, ops);
    }

    /// Insert an idle period, reusing `scratch` for the update path and any
    /// rebuild staging. Amortized `O(log^2 n)`, allocation-free once the
    /// scratch buffers are warm.
    pub fn insert_with(&mut self, period: IdlePeriod, scratch: &mut Scratch, ops: &mut OpStats) {
        ops.periods_inserted += 1;
        self.size += 1;
        self.max_size_since_rebuild = self.max_size_since_rebuild.max(self.size);
        if self.root == NIL {
            self.root = self.alloc(PNode::Leaf { period });
            return;
        }
        let key = period.start_key();
        let end_key = period.end_key();
        // Descend to the leaf position, updating ancestors on the way. The
        // path buffer is taken out of the scratch so the rebuild below can
        // borrow the rest of it.
        let mut path = std::mem::take(&mut scratch.path);
        path.clear();
        let mut cur = self.root;
        loop {
            ops.update_visits += 1;
            match &mut self.nodes[cur as usize] {
                PNode::Internal {
                    left,
                    right,
                    size,
                    split,
                    secondary,
                } => {
                    *size += 1;
                    let (l, r, go_left) = (*left, *right, key <= *split);
                    let mut sec = *secondary;
                    sec.insert(&mut self.arena, end_key, ops);
                    if let PNode::Internal { secondary, .. } = &mut self.nodes[cur as usize] {
                        *secondary = sec;
                    }
                    path.push(cur);
                    cur = if go_left { l } else { r };
                }
                PNode::Leaf { period: old } => {
                    let old = *old;
                    debug_assert_ne!(old.id, period.id, "duplicate period id");
                    // Replace this leaf by an internal node over {old, new}.
                    let new_leaf = self.alloc(PNode::Leaf { period });
                    let old_leaf = self.alloc(PNode::Leaf { period: old });
                    let (l, r, split) = if key <= old.start_key() {
                        (new_leaf, old_leaf, key)
                    } else {
                        (old_leaf, new_leaf, old.start_key())
                    };
                    let mut secondary = Treap::new();
                    secondary.insert(&mut self.arena, old.end_key(), ops);
                    secondary.insert(&mut self.arena, end_key, ops);
                    self.nodes[cur as usize] = PNode::Internal {
                        left: l,
                        right: r,
                        size: 2,
                        split,
                        secondary,
                    };
                    path.push(cur);
                    break;
                }
                PNode::Free => unreachable!("descended into freed node"),
            }
        }
        self.rebalance_path(&path, scratch, ops);
        scratch.path = path;
    }

    /// Remove a period (identified by its full record, so both tree keys are
    /// known). Returns whether it was present. Amortized `O(log^2 n)`.
    ///
    /// Convenience wrapper over [`SlotTree::remove_with`].
    pub fn remove(&mut self, period: &IdlePeriod, ops: &mut OpStats) -> bool {
        let mut scratch = Scratch::new();
        self.remove_with(period, &mut scratch, ops)
    }

    /// Remove a period, reusing `scratch` for the update path and any rebuild
    /// staging. Amortized `O(log^2 n)`, allocation-free once warm.
    pub fn remove_with(
        &mut self,
        period: &IdlePeriod,
        scratch: &mut Scratch,
        ops: &mut OpStats,
    ) -> bool {
        if self.root == NIL {
            return false;
        }
        let key = period.start_key();
        let end_key = period.end_key();
        // First verify presence (cheap read-only descent) so that a miss
        // leaves the tree untouched.
        {
            let mut cur = self.root;
            loop {
                match &self.nodes[cur as usize] {
                    PNode::Internal { left, right, split, .. } => {
                        cur = if key <= *split { *left } else { *right };
                    }
                    PNode::Leaf { period: p } => {
                        if p.id != period.id {
                            return false;
                        }
                        debug_assert_eq!(p.start, period.start, "stale period record");
                        debug_assert_eq!(p.end, period.end, "stale period record");
                        break;
                    }
                    PNode::Free => unreachable!(),
                }
            }
        }
        ops.periods_removed += 1;
        self.size -= 1;
        // Mutating descent: fix sizes and secondaries, track parent and
        // grandparent for the structural splice.
        let mut parent: u32 = NIL;
        let mut grandparent: u32 = NIL;
        let mut path = std::mem::take(&mut scratch.path);
        path.clear();
        let mut cur = self.root;
        loop {
            ops.update_visits += 1;
            match &mut self.nodes[cur as usize] {
                PNode::Internal {
                    left,
                    right,
                    size,
                    split,
                    secondary,
                } => {
                    *size -= 1;
                    let (l, r, go_left) = (*left, *right, key <= *split);
                    let mut sec = *secondary;
                    let removed = sec.remove(&mut self.arena, end_key, ops);
                    debug_assert!(removed, "secondary missing end key during removal");
                    if let PNode::Internal { secondary, .. } = &mut self.nodes[cur as usize] {
                        *secondary = sec;
                    }
                    grandparent = parent;
                    parent = cur;
                    path.push(cur);
                    cur = if go_left { l } else { r };
                }
                PNode::Leaf { .. } => break,
                PNode::Free => unreachable!(),
            }
        }
        // Structural splice: replace `parent` with the leaf's sibling.
        if parent == NIL {
            // The leaf was the root.
            self.dealloc(cur);
            self.root = NIL;
        } else {
            let sibling = match &self.nodes[parent as usize] {
                PNode::Internal { left, right, .. } => {
                    if *left == cur {
                        *right
                    } else {
                        *left
                    }
                }
                _ => unreachable!(),
            };
            self.dealloc(cur);
            self.dealloc(parent);
            path.pop(); // `parent` no longer exists
            if grandparent == NIL {
                self.root = sibling;
            } else if let PNode::Internal { left, right, .. } =
                &mut self.nodes[grandparent as usize]
            {
                if *left == parent {
                    *left = sibling;
                } else {
                    debug_assert_eq!(*right, parent);
                    *right = sibling;
                }
            }
        }
        // Scapegoat deletion rule: rebuild everything once the tree has
        // shrunk below ALPHA of its high-water mark.
        if self.size > 0
            && (self.size as u64) * ALPHA_DEN < (self.max_size_since_rebuild as u64) * ALPHA_NUM
        {
            self.rebuild_root(scratch, ops);
        } else {
            self.rebalance_path(&path, scratch, ops);
        }
        scratch.path = path;
        true
    }

    /// Find the highest weight-unbalanced node on `path` and rebuild it.
    fn rebalance_path(&mut self, path: &[u32], scratch: &mut Scratch, ops: &mut OpStats) {
        for (idx, &n) in path.iter().enumerate() {
            if let PNode::Internal { left, right, size, .. } = &self.nodes[n as usize] {
                let max_child = self.node_size(*left).max(self.node_size(*right)) as u64;
                if max_child * ALPHA_DEN > (*size as u64) * ALPHA_NUM {
                    let parent = if idx == 0 { NIL } else { path[idx - 1] };
                    self.rebuild_at(n, parent, scratch, ops);
                    return;
                }
            }
        }
    }

    fn rebuild_root(&mut self, scratch: &mut Scratch, ops: &mut OpStats) {
        if self.root != NIL {
            self.rebuild_at(self.root, NIL, scratch, ops);
        }
        self.max_size_since_rebuild = self.size;
    }

    /// Flatten the subtree at `node` and rebuild it perfectly balanced,
    /// reconstructing every secondary tree. The leaf and end-key staging
    /// buffers come from `scratch`, so repeated rebuilds reuse one
    /// allocation each.
    fn rebuild_at(&mut self, node: u32, parent: u32, scratch: &mut Scratch, ops: &mut OpStats) {
        ops.rebuilds += 1;
        static REBUILD_SIZE: obs::LazyHistogram = obs::LazyHistogram::new("tree_rebuild_size");
        let size = self.node_size(node);
        REBUILD_SIZE.observe(size as u64);
        obs::obs_event!("tree.rebuild", "size" => size as u64, "root" => parent == NIL);
        let mut leaves = std::mem::take(&mut scratch.leaves);
        leaves.clear();
        self.collect_and_free(node, &mut leaves);
        let rebuilt = self.build_balanced(&leaves, &mut scratch.ends, &mut scratch.ends_aux, ops);
        scratch.leaves = leaves;
        if parent == NIL {
            self.root = rebuilt;
        } else if let PNode::Internal { left, right, .. } = &mut self.nodes[parent as usize] {
            if *left == node {
                *left = rebuilt;
            } else {
                debug_assert_eq!(*right, node);
                *right = rebuilt;
            }
        }
    }

    /// In-order collection of leaf periods, freeing every node visited.
    fn collect_and_free(&mut self, node: u32, out: &mut Vec<IdlePeriod>) {
        match std::mem::replace(&mut self.nodes[node as usize], PNode::Free) {
            PNode::Leaf { period } => {
                out.push(period);
                self.free.push(node);
            }
            PNode::Internal {
                left,
                right,
                mut secondary,
                ..
            } => {
                secondary.clear(&mut self.arena);
                self.free.push(node);
                self.collect_and_free(left, out);
                self.collect_and_free(right, out);
            }
            PNode::Free => unreachable!("double free"),
        }
    }

    /// Build a perfectly balanced leaf-oriented tree over `sorted` (ascending
    /// in `StartKey` order, i.e. descending start time). Returns NIL for an
    /// empty slice.
    ///
    /// Secondary trees are built bottom-up in merge-sort fashion: each
    /// node's end-key list is the `O(k)` merge of its children's lists, and
    /// the treap itself is bulk-built from the sorted list in `O(k)`, for
    /// `O(k log k)` per rebuild overall (vs `O(k log^2 k)` with repeated
    /// inserts). Instead of allocating one end-key vector per internal node,
    /// the recursion keeps all runs on a single shared stack (`ends`) and
    /// merges adjacent runs through one auxiliary buffer (`aux`), so a
    /// rebuild allocates nothing once both buffers are warm.
    fn build_balanced(
        &mut self,
        sorted: &[IdlePeriod],
        ends: &mut Vec<EndKey>,
        aux: &mut Vec<EndKey>,
        ops: &mut OpStats,
    ) -> u32 {
        ends.clear();
        self.build_rec(sorted, ends, aux, ops)
    }

    /// Builds the subtree over `sorted`; on return, that subtree's end keys
    /// are the top `sorted.len()` entries of `ends`, in ascending order.
    fn build_rec(
        &mut self,
        sorted: &[IdlePeriod],
        ends: &mut Vec<EndKey>,
        aux: &mut Vec<EndKey>,
        ops: &mut OpStats,
    ) -> u32 {
        match sorted.len() {
            0 => NIL,
            1 => {
                ends.push(sorted[0].end_key());
                self.alloc(PNode::Leaf { period: sorted[0] })
            }
            len => {
                ops.update_visits += len as u64;
                let mid = len / 2; // left gets [0, mid), right [mid, len)
                let base = ends.len();
                let left = self.build_rec(&sorted[..mid], ends, aux, ops);
                let right = self.build_rec(&sorted[mid..], ends, aux, ops);
                // Merge the two adjacent sorted runs the children left on
                // the stack: ends[base..base+mid] and ends[base+mid..].
                aux.clear();
                {
                    let (l, r) = ends[base..].split_at(mid);
                    let (mut i, mut j) = (0, 0);
                    while i < l.len() && j < r.len() {
                        if l[i] <= r[j] {
                            aux.push(l[i]);
                            i += 1;
                        } else {
                            aux.push(r[j]);
                            j += 1;
                        }
                    }
                    aux.extend_from_slice(&l[i..]);
                    aux.extend_from_slice(&r[j..]);
                }
                ends.truncate(base);
                ends.extend_from_slice(aux);
                let secondary = Treap::from_sorted(&mut self.arena, &ends[base..], ops);
                self.alloc(PNode::Internal {
                    left,
                    right,
                    size: len as u32,
                    split: sorted[mid - 1].start_key(),
                    secondary,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 1 / Phase 2 searches
    // ------------------------------------------------------------------

    /// Phase 1: locate every *candidate* idle period (`st_i <= s_r`).
    ///
    /// Returns the total candidate count (from subtree-size annotations, no
    /// enumeration) and the marked subtrees, in marking order. `O(log n)`.
    ///
    /// Convenience wrapper over [`SlotTree::phase1_candidates_into`].
    pub fn phase1_candidates(&self, start: Time, ops: &mut OpStats) -> (usize, Vec<MarkedNode>) {
        let mut marked = Vec::new();
        let count = self.phase1_candidates_into(start, &mut marked, ops);
        (count, marked)
    }

    /// Phase 1 into a caller-supplied marked-node buffer (cleared first);
    /// returns the candidate count. Allocation-free once `marked` is warm.
    pub fn phase1_candidates_into(
        &self,
        start: Time,
        marked: &mut Vec<MarkedNode>,
        ops: &mut OpStats,
    ) -> usize {
        ops.phase1_searches += 1;
        marked.clear();
        self.phase1_candidates_append(start, marked, ops)
    }

    /// Phase 1 that *appends* to `marked` without clearing it and without
    /// counting as a separate search — the building block the segment-tree
    /// ring uses to run one logical Phase 1 across every tree on a
    /// stabbing path, accumulating marks in a single shared buffer.
    pub fn phase1_candidates_append(
        &self,
        start: Time,
        marked: &mut Vec<MarkedNode>,
        ops: &mut OpStats,
    ) -> usize {
        let mut count = 0usize;
        let mut cur = self.root;
        while cur != NIL {
            ops.primary_visits += 1;
            match &self.nodes[cur as usize] {
                PNode::Internal { left, right, split, .. } => {
                    if split.start <= start {
                        // Everything right of the split starts no later than
                        // the split: all candidates. Mark and go left.
                        count += self.node_size(*right) as usize;
                        marked.push(MarkedNode(*right));
                        cur = *left;
                    } else {
                        // Everything left of the split starts strictly later
                        // than s_r: ignore, go right.
                        cur = *right;
                    }
                }
                PNode::Leaf { period } => {
                    if period.is_candidate(start) {
                        count += 1;
                        marked.push(MarkedNode(cur));
                    }
                    break;
                }
                PNode::Free => unreachable!(),
            }
        }
        count
    }

    /// Phase 2: among the Phase-1 candidates, find up to `limit` *feasible*
    /// periods (`et_i >= end`), searching marked subtrees in reverse marking
    /// order (latest-starting candidates first, as in the paper's example).
    /// `O(log^2 n)` plus `O(limit)` retrieval.
    ///
    /// Convenience wrapper over [`SlotTree::phase2_feasible_into`].
    pub fn phase2_feasible(
        &self,
        marked: &[MarkedNode],
        end: Time,
        limit: usize,
        ops: &mut OpStats,
    ) -> Vec<PeriodId> {
        let mut out: Vec<PeriodId> = Vec::new();
        self.phase2_feasible_into(marked, end, limit, &mut out, ops);
        out
    }

    /// Phase 2 appending into a caller-supplied buffer. `limit` caps the
    /// *total* length of `out` (pre-existing entries — e.g. trailing-set
    /// candidates collected first — count against it). Allocation-free once
    /// `out` is warm.
    pub fn phase2_feasible_into(
        &self,
        marked: &[MarkedNode],
        end: Time,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) {
        ops.phase2_searches += 1;
        self.phase2_collect(marked, end, limit, out, ops);
    }

    /// Phase 2 over one tree's slice of a shared marked buffer, without
    /// counting as a separate search — the segment-tree ring's per-node
    /// step of a single logical Phase 2.
    pub fn phase2_collect(
        &self,
        marked: &[MarkedNode],
        end: Time,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) {
        for &MarkedNode(n) in marked.iter().rev() {
            if out.len() >= limit {
                break;
            }
            match &self.nodes[n as usize] {
                PNode::Leaf { period } => {
                    ops.secondary_visits += 1;
                    if period.end >= end {
                        out.push(period.id);
                    }
                }
                PNode::Internal { secondary, .. } => {
                    secondary.collect_ge(
                        &self.arena,
                        EndKey { end, id: PeriodId(0) },
                        limit,
                        out,
                        ops,
                    );
                }
                PNode::Free => unreachable!(),
            }
        }
    }

    /// Count (without retrieving) the feasible periods among the marked
    /// candidates — used by the range-search counting API.
    pub fn count_feasible(&self, marked: &[MarkedNode], end: Time, ops: &mut OpStats) -> usize {
        let mut count = 0usize;
        for &MarkedNode(n) in marked {
            match &self.nodes[n as usize] {
                PNode::Leaf { period } => {
                    ops.secondary_visits += 1;
                    if period.end >= end {
                        count += 1;
                    }
                }
                PNode::Internal { secondary, .. } => {
                    count += secondary.count_ge(&self.arena, EndKey { end, id: PeriodId(0) }, ops);
                }
                PNode::Free => unreachable!(),
            }
        }
        count
    }

    /// Convenience composition of both phases: find up to `limit` feasible
    /// periods for a job occupying `[start, end)`.
    pub fn find_feasible(
        &self,
        start: Time,
        end: Time,
        limit: usize,
        ops: &mut OpStats,
    ) -> Vec<PeriodId> {
        let (count, marked) = self.phase1_candidates(start, ops);
        if count == 0 {
            return Vec::new();
        }
        self.phase2_feasible(&marked, end, limit, ops)
    }

    // ------------------------------------------------------------------
    // Introspection / validation
    // ------------------------------------------------------------------

    /// All periods in leaf order (descending start). Test/debug helper.
    pub fn periods_in_order(&self) -> Vec<IdlePeriod> {
        let mut out = Vec::with_capacity(self.len());
        fn rec(tree: &SlotTree, node: u32, out: &mut Vec<IdlePeriod>) {
            if node == NIL {
                return;
            }
            match &tree.nodes[node as usize] {
                PNode::Leaf { period } => out.push(*period),
                PNode::Internal { left, right, .. } => {
                    rec(tree, *left, out);
                    rec(tree, *right, out);
                }
                PNode::Free => unreachable!(),
            }
        }
        rec(self, self.root, &mut out);
        out
    }

    /// Exhaustively check every structural invariant. Test helper; panics on
    /// violation.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        struct Info {
            size: u32,
            min: StartKey,
            max: StartKey,
        }
        fn rec(tree: &SlotTree, node: u32) -> Option<Info> {
            if node == NIL {
                return None;
            }
            match &tree.nodes[node as usize] {
                PNode::Leaf { period } => Some(Info {
                    size: 1,
                    min: period.start_key(),
                    max: period.start_key(),
                }),
                PNode::Internal {
                    left,
                    right,
                    size,
                    split,
                    secondary,
                } => {
                    let l = rec(tree, *left).expect("internal node with empty left subtree");
                    let r = rec(tree, *right).expect("internal node with empty right subtree");
                    assert_eq!(*size, l.size + r.size, "size annotation");
                    assert!(l.max <= *split, "left subtree exceeds split");
                    assert!(r.min > *split, "right subtree at or below split");
                    // Secondary tree must contain exactly the subtree's
                    // periods, in ascending end order.
                    let mut expected: Vec<crate::idle::EndKey> = Vec::new();
                    fn ends(tree: &SlotTree, node: u32, out: &mut Vec<crate::idle::EndKey>) {
                        match &tree.nodes[node as usize] {
                            PNode::Leaf { period } => out.push(period.end_key()),
                            PNode::Internal { left, right, .. } => {
                                ends(tree, *left, out);
                                ends(tree, *right, out);
                            }
                            PNode::Free => unreachable!(),
                        }
                    }
                    ends(tree, node, &mut expected);
                    expected.sort();
                    assert_eq!(
                        secondary.keys_in_order(&tree.arena),
                        expected,
                        "secondary contents mismatch"
                    );
                    secondary.check_invariants(&tree.arena);
                    Some(Info {
                        size: *size,
                        min: l.min,
                        max: r.max,
                    })
                }
                PNode::Free => panic!("freed node reachable"),
            }
        }
        let info = rec(self, self.root);
        assert_eq!(
            info.map(|i| i.size).unwrap_or(0),
            self.size,
            "tree size annotation"
        );
        // Leaf order must be sorted by key.
        let leaves = self.periods_in_order();
        for w in leaves.windows(2) {
            assert!(w[0].start_key() < w[1].start_key(), "leaf order");
        }
    }

    /// Height of the tree (edges on the longest root-leaf path); used to
    /// check the weight-balance guarantee in tests.
    pub fn height(&self) -> usize {
        fn rec(tree: &SlotTree, node: u32) -> usize {
            if node == NIL {
                return 0;
            }
            match &tree.nodes[node as usize] {
                PNode::Leaf { .. } => 0,
                PNode::Internal { left, right, .. } => 1 + rec(tree, *left).max(rec(tree, *right)),
                PNode::Free => unreachable!(),
            }
        }
        rec(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    fn p(id: u64, server: u32, start: i64, end: i64) -> IdlePeriod {
        IdlePeriod {
            id: PeriodId(id),
            server: ServerId(server),
            start: Time(start),
            end: if end == i64::MAX { Time::INF } else { Time(end) },
        }
    }

    /// The four idle periods of Figure 2 (slot q = 2, interval [10, 20)).
    fn figure2_tree() -> SlotTree {
        let mut ops = OpStats::new();
        let mut t = SlotTree::new(0xF16);
        // X = (4, 25, server 1), Y = (16, 33, 2), Z = (7, 33, 3), V = (1, 18, 4)
        t.insert(p(1, 1, 4, 25), &mut ops);
        t.insert(p(2, 2, 16, 33), &mut ops);
        t.insert(p(3, 3, 7, 33), &mut ops);
        t.insert(p(4, 4, 1, 18), &mut ops);
        t.check_invariants();
        t
    }

    #[test]
    fn figure2_leaf_order_is_descending_start() {
        let t = figure2_tree();
        let starts: Vec<i64> = t.periods_in_order().iter().map(|q| q.start.0).collect();
        assert_eq!(starts, vec![16, 7, 4, 1]); // Y, Z, X, V
    }

    #[test]
    fn paper_walkthrough_request_17_12_2() {
        // Section 4.2 example: r = (q_r=17, s_r=17, l_r=12, n_r=2), e_r=29.
        let t = figure2_tree();
        let mut ops = OpStats::new();
        let (count, marked) = t.phase1_candidates(Time(17), &mut ops);
        // All four periods start at or before 17 — 4 > n_r = 2 candidates.
        assert_eq!(count, 4);
        // Phase 2 (reverse marking order → latest-starting candidates first)
        // finds Y and Z, both ending at 33 >= 29.
        let feasible = t.phase2_feasible(&marked, Time(29), 2, &mut ops);
        assert_eq!(feasible.len(), 2);
        let mut ids: Vec<u64> = feasible.iter().map(|i| i.0).collect();
        ids.sort();
        assert_eq!(ids, vec![2, 3]); // Y and Z
        assert!(ops.primary_visits > 0 && ops.secondary_visits > 0);
    }

    #[test]
    fn phase1_excludes_later_starts() {
        let t = figure2_tree();
        let mut ops = OpStats::new();
        // s_r = 5: only X (st=4) and V (st=1) are candidates.
        let (count, marked) = t.phase1_candidates(Time(5), &mut ops);
        assert_eq!(count, 2);
        let all = t.phase2_feasible(&marked, Time(6), usize::MAX, &mut ops);
        let mut ids: Vec<u64> = all.iter().map(|i| i.0).collect();
        ids.sort();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn phase2_respects_end_condition() {
        let t = figure2_tree();
        let mut ops = OpStats::new();
        let (_, marked) = t.phase1_candidates(Time(17), &mut ops);
        // e_r = 34: no period ends at or after 34.
        assert!(t.phase2_feasible(&marked, Time(34), 2, &mut ops).is_empty());
        assert_eq!(t.count_feasible(&marked, Time(34), &mut ops), 0);
        // e_r = 18: all four are feasible.
        assert_eq!(t.count_feasible(&marked, Time(18), &mut ops), 4);
    }

    #[test]
    fn find_feasible_composes_phases() {
        let t = figure2_tree();
        let mut ops = OpStats::new();
        let ids = t.find_feasible(Time(17), Time(29), usize::MAX, &mut ops);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn remove_then_search() {
        let mut t = figure2_tree();
        let mut ops = OpStats::new();
        assert!(t.remove(&p(2, 2, 16, 33), &mut ops)); // remove Y
        assert!(!t.remove(&p(2, 2, 16, 33), &mut ops));
        t.check_invariants();
        let ids = t.find_feasible(Time(17), Time(29), usize::MAX, &mut ops);
        assert_eq!(ids, vec![PeriodId(3)]); // only Z remains feasible
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        let mut t = figure2_tree();
        let mut ops = OpStats::new();
        for (id, srv, s, e) in [(1, 1, 4, 25), (2, 2, 16, 33), (3, 3, 7, 33), (4, 4, 1, 18)] {
            assert!(t.remove(&p(id, srv, s, e), &mut ops));
            t.check_invariants();
        }
        assert!(t.is_empty());
        let (count, marked) = t.phase1_candidates(Time(100), &mut ops);
        assert_eq!(count, 0);
        assert!(marked.is_empty());
    }

    #[test]
    fn open_ended_periods_always_feasible() {
        let mut t = SlotTree::new(1);
        let mut ops = OpStats::new();
        for i in 0..8 {
            t.insert(p(i, i as u32, i as i64, i64::MAX), &mut ops);
        }
        let ids = t.find_feasible(Time(100), Time(1 << 50), usize::MAX, &mut ops);
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn from_periods_bulk_build_matches_incremental() {
        let mut ops = OpStats::new();
        let periods: Vec<IdlePeriod> = (0..64)
            .map(|i| p(i, (i % 8) as u32, (i * 37 % 100) as i64, (200 + i * 13 % 97) as i64))
            .collect();
        let bulk = SlotTree::from_periods(9, periods.clone(), &mut ops);
        bulk.check_invariants();
        let mut inc = SlotTree::new(9);
        for q in &periods {
            inc.insert(*q, &mut ops);
        }
        inc.check_invariants();
        assert_eq!(bulk.periods_in_order(), inc.periods_in_order());
    }

    #[test]
    fn height_stays_logarithmic_under_adversarial_inserts() {
        let mut t = SlotTree::new(3);
        let mut ops = OpStats::new();
        // Strictly increasing starts: worst case for an unbalanced BST.
        for i in 0..1024i64 {
            t.insert(p(i as u64, 0, i, i + 10_000), &mut ops);
        }
        t.check_invariants();
        // alpha = 0.7 bounds height by log(n)/log(1/alpha) ~ 1.94*log2(n) = ~20.
        assert!(t.height() <= 24, "height {} too large", t.height());
        assert!(ops.rebuilds > 0, "scapegoat rebuilds should have triggered");
    }

    #[test]
    fn deletion_heavy_shrink_triggers_global_rebuild() {
        let mut t = SlotTree::new(4);
        let mut ops = OpStats::new();
        let periods: Vec<IdlePeriod> =
            (0..512).map(|i| p(i, 0, i as i64, 10_000 + i as i64)).collect();
        for q in &periods {
            t.insert(*q, &mut ops);
        }
        for q in periods.iter().take(480) {
            assert!(t.remove(q, &mut ops));
        }
        t.check_invariants();
        assert_eq!(t.len(), 32);
        assert!(t.height() <= 12);
    }

    #[test]
    fn oracle_equivalence_random_ops() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut t = SlotTree::new(5);
        let mut ops = OpStats::new();
        let mut live: Vec<IdlePeriod> = Vec::new();
        for i in 0..3000u64 {
            if live.is_empty() || rng.random_bool(0.55) {
                let s = rng.random_range(0..1000);
                let e = s + rng.random_range(1..500);
                let period = p(i, (i % 16) as u32, s, e);
                t.insert(period, &mut ops);
                live.push(period);
            } else {
                let idx = rng.random_range(0..live.len());
                let victim = live.swap_remove(idx);
                assert!(t.remove(&victim, &mut ops));
            }
            if i % 151 == 0 {
                t.check_invariants();
                let sr = Time(rng.random_range(0..1200));
                let er = sr + crate::time::Dur(rng.random_range(1..400));
                let mut got: Vec<u64> = t
                    .find_feasible(sr, er, usize::MAX, &mut ops)
                    .iter()
                    .map(|x| x.0)
                    .collect();
                got.sort();
                let mut want: Vec<u64> = live
                    .iter()
                    .filter(|q| q.is_feasible(sr, er))
                    .map(|q| q.id.0)
                    .collect();
                want.sort();
                assert_eq!(got, want, "tree/oracle divergence at step {i}");
            }
        }
    }
}
