//! Scheduler error types.

use crate::ids::JobId;
use crate::request::RequestError;
use crate::time::Time;

/// Why a request could not be scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The request itself is malformed.
    InvalidRequest(RequestError),
    /// The request asks for more servers than the system has (`n_r > N`).
    TooManyServers {
        /// Servers requested.
        requested: u32,
        /// Servers in the system.
        available: u32,
    },
    /// No feasible start time was found within `R_max` attempts.
    ///
    /// `last_tried` is the last candidate start time examined, so callers can
    /// resubmit later or widen their window.
    Exhausted {
        /// Number of attempts made (`<= R_max`).
        attempts: u32,
        /// The last candidate start time tried.
        last_tried: Time,
    },
    /// Every remaining candidate start would end past the scheduling horizon.
    HorizonExceeded {
        /// The end of the current horizon.
        horizon_end: Time,
    },
    /// The earliest start lies in the past relative to the scheduler clock.
    StartInPast {
        /// The scheduler's current time.
        now: Time,
    },
    /// A commit referenced a job that does not exist (release/commit paths).
    UnknownJob(JobId),
    /// A two-phase commit found the selected periods no longer available.
    SelectionConflict,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            ScheduleError::TooManyServers { requested, available } => write!(
                f,
                "request needs {requested} servers but the system has only {available}"
            ),
            ScheduleError::Exhausted { attempts, last_tried } => write!(
                f,
                "no feasible start found after {attempts} attempts (last tried {last_tried})"
            ),
            ScheduleError::HorizonExceeded { horizon_end } => {
                write!(f, "request does not fit before the horizon ({horizon_end})")
            }
            ScheduleError::StartInPast { now } => {
                write!(f, "requested start precedes the scheduler clock ({now})")
            }
            ScheduleError::UnknownJob(j) => write!(f, "unknown job {j}"),
            ScheduleError::SelectionConflict => {
                write!(f, "selected resources were taken before commit")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<RequestError> for ScheduleError {
    fn from(e: RequestError) -> Self {
        ScheduleError::InvalidRequest(e)
    }
}
