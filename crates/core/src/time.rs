//! Time, duration and slot arithmetic.
//!
//! The paper partitions the temporal space into `Q = ceil(H / tau)` slots of
//! width `tau`, where `H` is the scheduling horizon (Section 4.1). All times
//! in this crate are integer seconds wrapped in the [`Time`] and [`Dur`]
//! newtypes so that absolute instants and durations cannot be mixed up.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute instant, in seconds since the simulation epoch.
///
/// `Time` is totally ordered and supports the arithmetic needed by the
/// scheduler: `Time + Dur`, `Time - Time -> Dur`, comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub i64);

/// A non-negative length of time, in seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub i64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// Sentinel for "idle until the (moving) end of the horizon".
    ///
    /// Idle periods on the trailing edge of a server's schedule are
    /// open-ended: they conceptually extend forever and are clipped to the
    /// horizon on demand. Using a quarter of the `i64` range keeps all
    /// arithmetic on the sentinel overflow-free.
    pub const INF: Time = Time(i64::MAX / 4);

    /// Whether this is the open-ended sentinel.
    #[inline]
    pub fn is_inf(self) -> bool {
        self >= Time::INF
    }

    /// Seconds since the epoch.
    #[inline]
    pub fn secs(self) -> i64 {
        self.0
    }

    /// Construct from whole hours (convenience for tests and examples).
    #[inline]
    pub fn from_hours(h: i64) -> Time {
        Time(h * 3600)
    }

    /// Saturating difference `self - earlier`, clamped at zero.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur((self.0 - earlier.0).max(0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Length in seconds.
    #[inline]
    pub fn secs(self) -> i64 {
        self.0
    }

    /// Length in fractional hours (for reporting).
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: i64) -> Dur {
        debug_assert!(s >= 0, "durations are non-negative");
        Dur(s)
    }

    /// Construct from whole minutes.
    #[inline]
    pub fn from_mins(m: i64) -> Dur {
        Dur(m * 60)
    }

    /// Construct from whole hours.
    #[inline]
    pub fn from_hours(h: i64) -> Dur {
        Dur(h * 3600)
    }

    /// True when the duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Time) -> Dur {
        Dur(self.0 - other.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0 - d.0)
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, k: i64) -> Dur {
        Dur(self.0 * k)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "t=inf")
        } else {
            write!(f, "t={}", self.0)
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Index of a slot in the (unbounded, monotonically advancing) slot sequence.
///
/// Slot `q` covers the half-open interval `[q*tau, (q+1)*tau)`. Indices are
/// absolute, not ring positions: the live window at time `t` is
/// `[slot_of(t), slot_of(t) + Q)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotIdx(pub i64);

impl SlotIdx {
    /// The next slot.
    #[inline]
    pub fn next(self) -> SlotIdx {
        SlotIdx(self.0 + 1)
    }
}

/// Slot geometry: slot width `tau` and the number of live slots `Q`.
///
/// The paper takes `tau` "as the unit of time", equal to the minimum temporal
/// size of reservation requests, and keeps `Q = ceil(H / tau)` trees alive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotConfig {
    /// Slot width.
    pub tau: Dur,
    /// Number of live slots (`Q`).
    pub num_slots: usize,
}

impl SlotConfig {
    /// Build a slot configuration from a slot width and a horizon; the number
    /// of slots is `ceil(horizon / tau)`.
    pub fn new(tau: Dur, horizon: Dur) -> SlotConfig {
        assert!(tau.0 > 0, "slot width must be positive");
        assert!(horizon.0 >= tau.0, "horizon must cover at least one slot");
        let q = (horizon.0 + tau.0 - 1) / tau.0;
        SlotConfig {
            tau,
            num_slots: q as usize,
        }
    }

    /// The horizon length `Q * tau` actually covered.
    #[inline]
    pub fn horizon(&self) -> Dur {
        Dur(self.tau.0 * self.num_slots as i64)
    }

    /// The slot containing instant `t` (floor division, correct for negative
    /// times as well).
    #[inline]
    pub fn slot_of(&self, t: Time) -> SlotIdx {
        SlotIdx(t.0.div_euclid(self.tau.0))
    }

    /// The first instant of slot `q`.
    #[inline]
    pub fn slot_start(&self, q: SlotIdx) -> Time {
        Time(q.0 * self.tau.0)
    }

    /// One past the last instant of slot `q`.
    #[inline]
    pub fn slot_end(&self, q: SlotIdx) -> Time {
        Time((q.0 + 1) * self.tau.0)
    }

    /// Inclusive range of slots overlapped by the half-open interval
    /// `[start, end)`; `None` for empty intervals.
    ///
    /// An idle period is stored in the tree of every slot it overlaps
    /// (Section 4.1), which is exactly this range intersected with the live
    /// window.
    #[inline]
    pub fn slots_overlapping(&self, start: Time, end: Time) -> Option<(SlotIdx, SlotIdx)> {
        if end <= start {
            return None;
        }
        let first = self.slot_of(start);
        let last = self.slot_of(Time(end.0 - 1));
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time(100) + Dur(50);
        assert_eq!(t, Time(150));
        assert_eq!(t - Time(100), Dur(50));
        assert_eq!(t - Dur(50), Time(100));
        assert_eq!(Time::from_hours(2), Time(7200));
        assert_eq!(Dur::from_mins(15), Dur(900));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Time(5).saturating_since(Time(10)), Dur::ZERO);
        assert_eq!(Time(10).saturating_since(Time(5)), Dur(5));
    }

    #[test]
    fn inf_is_far_future_and_overflow_safe() {
        assert!(Time::INF.is_inf());
        assert!(!Time(1 << 40).is_inf());
        // Adding a large duration to INF must not overflow.
        let _ = Time::INF + Dur::from_hours(1_000_000);
    }

    #[test]
    fn slot_of_basic() {
        let cfg = SlotConfig::new(Dur(10), Dur(100));
        assert_eq!(cfg.num_slots, 10);
        assert_eq!(cfg.slot_of(Time(0)), SlotIdx(0));
        assert_eq!(cfg.slot_of(Time(9)), SlotIdx(0));
        assert_eq!(cfg.slot_of(Time(10)), SlotIdx(1));
        assert_eq!(cfg.slot_start(SlotIdx(3)), Time(30));
        assert_eq!(cfg.slot_end(SlotIdx(3)), Time(40));
    }

    #[test]
    fn slot_config_rounds_horizon_up() {
        let cfg = SlotConfig::new(Dur(10), Dur(95));
        assert_eq!(cfg.num_slots, 10);
        assert_eq!(cfg.horizon(), Dur(100));
    }

    #[test]
    fn slots_overlapping_half_open() {
        let cfg = SlotConfig::new(Dur(10), Dur(100));
        // [4, 25) overlaps slots 0, 1, 2 — the paper's idle period X with
        // tau = 10 (Figure 2).
        assert_eq!(
            cfg.slots_overlapping(Time(4), Time(25)),
            Some((SlotIdx(0), SlotIdx(2)))
        );
        // An interval ending exactly on a slot boundary does not reach the
        // next slot.
        assert_eq!(
            cfg.slots_overlapping(Time(0), Time(10)),
            Some((SlotIdx(0), SlotIdx(0)))
        );
        assert_eq!(cfg.slots_overlapping(Time(5), Time(5)), None);
        assert_eq!(cfg.slots_overlapping(Time(7), Time(3)), None);
    }

    #[test]
    fn slot_of_negative_times_floors() {
        let cfg = SlotConfig::new(Dur(10), Dur(100));
        assert_eq!(cfg.slot_of(Time(-1)), SlotIdx(-1));
        assert_eq!(cfg.slot_of(Time(-10)), SlotIdx(-1));
        assert_eq!(cfg.slot_of(Time(-11)), SlotIdx(-2));
    }
}
