//! Ground-truth per-server schedule.
//!
//! The slotted trees of [`crate::ring`] are a *search index*; the
//! [`Timeline`] is the authoritative record of every server's idle periods
//! and committed reservations ("the set of commitments that the system has
//! made", Section 2). Every mutation returns the exact set of idle periods
//! created and destroyed so the caller can mirror the change into the slot
//! trees.

use crate::idle::IdlePeriod;
use crate::ids::{JobId, PeriodId, ServerId};
use crate::time::Time;
use std::collections::{BTreeMap, HashMap};

/// A committed reservation of one server for `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// The job this reservation belongs to.
    pub job: JobId,
    /// The reserved server.
    pub server: ServerId,
    /// Start of the reserved window.
    pub start: Time,
    /// End (exclusive) of the reserved window.
    pub end: Time,
}

/// The idle-period delta produced by a timeline mutation: mirror `removed`
/// out of, and `added` into, the slot trees.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeriodDelta {
    /// Periods that no longer exist.
    pub removed: Vec<IdlePeriod>,
    /// Periods that now exist.
    pub added: Vec<IdlePeriod>,
}

#[derive(Clone, Debug, Default)]
struct ServerTimeline {
    /// Idle periods keyed by start time. Non-overlapping; the last one is
    /// always open-ended (`end == Time::INF`).
    idle: BTreeMap<Time, PeriodId>,
    /// Reservations keyed by start time. Non-overlapping.
    busy: BTreeMap<Time, (Time, JobId)>,
}

/// The authoritative schedule for `N` servers.
#[derive(Clone, Debug)]
pub struct Timeline {
    servers: Vec<ServerTimeline>,
    periods: HashMap<PeriodId, IdlePeriod>,
    next_period: u64,
    /// Busy server-seconds already pruned from `busy` maps (for utilization
    /// accounting over long runs).
    pruned_busy_secs: i64,
}

impl Timeline {
    /// Create a timeline where every server is idle from `origin` onwards.
    pub fn new(num_servers: u32, origin: Time) -> Timeline {
        let mut tl = Timeline {
            servers: vec![ServerTimeline::default(); num_servers as usize],
            periods: HashMap::new(),
            next_period: 0,
            pruned_busy_secs: 0,
        };
        for s in 0..num_servers {
            let id = tl.fresh_period_id();
            let period = IdlePeriod {
                id,
                server: ServerId(s),
                start: origin,
                end: Time::INF,
            };
            tl.periods.insert(id, period);
            tl.servers[s as usize].idle.insert(origin, id);
        }
        tl
    }

    /// Rebuild a timeline verbatim from explicit parts (the id-faithful
    /// snapshot-restore path). The caller has validated the geometry: no
    /// overlaps, exactly one open-ended idle period per server, unique
    /// period ids below `next_period`.
    pub(crate) fn from_parts(
        num_servers: u32,
        idle: &[IdlePeriod],
        busy: &[Reservation],
        next_period: u64,
    ) -> Timeline {
        let mut tl = Timeline {
            servers: vec![ServerTimeline::default(); num_servers as usize],
            periods: HashMap::new(),
            next_period,
            pruned_busy_secs: 0,
        };
        for p in idle {
            tl.periods.insert(p.id, *p);
            tl.servers[p.server.0 as usize].idle.insert(p.start, p.id);
        }
        for r in busy {
            tl.servers[r.server.0 as usize]
                .busy
                .insert(r.start, (r.end, r.job));
        }
        tl
    }

    /// The next period id this timeline will hand out (snapshot state:
    /// Phase-2 retrieval order under a result limit depends on period ids,
    /// so restore must reproduce the id sequence exactly).
    pub(crate) fn next_period_id(&self) -> u64 {
        self.next_period
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.servers.len() as u32
    }

    fn fresh_period_id(&mut self) -> PeriodId {
        let id = PeriodId(self.next_period);
        self.next_period += 1;
        id
    }

    /// Look up a period by id.
    pub fn period(&self, id: PeriodId) -> Option<&IdlePeriod> {
        self.periods.get(&id)
    }

    /// All idle periods of one server, in start order (test/debug helper).
    pub fn idle_periods(&self, server: ServerId) -> Vec<IdlePeriod> {
        self.servers[server.0 as usize]
            .idle
            .values()
            .map(|id| self.periods[id])
            .collect()
    }

    /// All reservations of one server, in start order.
    pub fn reservations(&self, server: ServerId) -> Vec<Reservation> {
        self.servers[server.0 as usize]
            .busy
            .iter()
            .map(|(&start, &(end, job))| Reservation {
                job,
                server,
                start,
                end,
            })
            .collect()
    }

    /// The open-ended trailing idle period of a server (always exists).
    pub fn trailing_period(&self, server: ServerId) -> IdlePeriod {
        let (_, id) = self.servers[server.0 as usize]
            .idle
            .iter()
            .next_back()
            .expect("every server has a trailing idle period");
        let p = self.periods[id];
        debug_assert!(p.end.is_inf(), "trailing period must be open-ended");
        p
    }

    /// Is `[start, end)` completely contained in an idle period of `server`?
    /// Returns that period if so.
    pub fn covering_idle(&self, server: ServerId, start: Time, end: Time) -> Option<IdlePeriod> {
        let st = &self.servers[server.0 as usize];
        let (_, id) = st.idle.range(..=start).next_back()?;
        let p = self.periods[id];
        (p.start <= start && p.end >= end).then_some(p)
    }

    /// Commit a reservation of `[start, end)` for `job`, carving it out of
    /// idle period `period_id` (which must cover the window). Returns the
    /// period delta (the covering period removed, zero to two fragments
    /// added).
    ///
    /// This is the update step of Section 4.2: "at most two new idle periods
    /// will be created: `j = (st_i, s_r)` and `k = (e_r, et_i)`".
    pub fn reserve(
        &mut self,
        period_id: PeriodId,
        job: JobId,
        start: Time,
        end: Time,
    ) -> PeriodDelta {
        let mut delta = PeriodDelta::default();
        self.reserve_into(period_id, job, start, end, &mut delta);
        delta
    }

    /// [`Timeline::reserve`] writing into a caller-supplied delta (cleared
    /// first), so the commit path can reuse one pair of vectors for every
    /// reservation instead of allocating per call.
    pub fn reserve_into(
        &mut self,
        period_id: PeriodId,
        job: JobId,
        start: Time,
        end: Time,
        delta: &mut PeriodDelta,
    ) {
        delta.removed.clear();
        delta.added.clear();
        assert!(start < end, "empty reservation window");
        let period = *self
            .periods
            .get(&period_id)
            .expect("reserve: unknown idle period");
        assert!(
            period.start <= start && period.end >= end,
            "reserve: window [{start}, {end}) not covered by period {period:?}"
        );
        let server = period.server;
        let st = &mut self.servers[server.0 as usize];
        st.idle.remove(&period.start);
        self.periods.remove(&period_id);
        st.busy.insert(start, (end, job));
        delta.removed.push(period);
        if period.start < start {
            let id = self.fresh_period_id();
            let frag = IdlePeriod {
                id,
                server,
                start: period.start,
                end: start,
            };
            self.periods.insert(id, frag);
            self.servers[server.0 as usize].idle.insert(frag.start, id);
            delta.added.push(frag);
        }
        if end < period.end {
            let id = self.fresh_period_id();
            let frag = IdlePeriod {
                id,
                server,
                start: end,
                end: period.end,
            };
            self.periods.insert(id, frag);
            self.servers[server.0 as usize].idle.insert(frag.start, id);
            delta.added.push(frag);
        }
    }

    /// Release the reservation of `job` on `server` covering `[start, end)`,
    /// merging the window back into the idle map (coalescing with adjacent
    /// idle periods). Used by cancellation and by the multi-site abort path.
    pub fn release(
        &mut self,
        server: ServerId,
        job: JobId,
        start: Time,
        end: Time,
    ) -> PeriodDelta {
        let mut delta = PeriodDelta::default();
        self.release_into(server, job, start, end, &mut delta);
        delta
    }

    /// [`Timeline::release`] writing into a caller-supplied delta (cleared
    /// first).
    pub fn release_into(
        &mut self,
        server: ServerId,
        job: JobId,
        start: Time,
        end: Time,
        delta: &mut PeriodDelta,
    ) {
        delta.removed.clear();
        delta.added.clear();
        let st = &mut self.servers[server.0 as usize];
        match st.busy.get(&start) {
            Some(&(e, j)) if e == end && j == job => {
                st.busy.remove(&start);
            }
            _ => panic!("release: no reservation of {job:?} at {start} on {server:?}"),
        }
        let mut merged_start = start;
        let mut merged_end = end;
        // Coalesce with the idle period ending exactly at `start`.
        let left = st
            .idle
            .range(..start)
            .next_back()
            .map(|(&s, &id)| (s, id))
            .filter(|&(_, id)| self.periods[&id].end == start);
        if let Some((s, id)) = left {
            let p = self.periods.remove(&id).unwrap();
            self.servers[server.0 as usize].idle.remove(&s);
            merged_start = p.start;
            delta.removed.push(p);
        }
        // Coalesce with the idle period starting exactly at `end`.
        let right = self.servers[server.0 as usize]
            .idle
            .get(&end)
            .copied();
        if let Some(id) = right {
            let p = self.periods.remove(&id).unwrap();
            self.servers[server.0 as usize].idle.remove(&end);
            merged_end = p.end;
            delta.removed.push(p);
        }
        let id = self.fresh_period_id();
        let merged = IdlePeriod {
            id,
            server,
            start: merged_start,
            end: merged_end,
        };
        self.periods.insert(id, merged);
        self.servers[server.0 as usize]
            .idle
            .insert(merged_start, id);
        delta.added.push(merged);
    }

    /// Drop a reservation that already ran to completion (its whole window
    /// lies at or before the live slot window) and count its busy seconds
    /// as completed, exactly as [`Timeline::prune_before`] would have. The
    /// idle map is left untouched: dead-history idle periods are
    /// unreferenced and fall to the next prune.
    pub fn retire(&mut self, server: ServerId, job: JobId, start: Time, end: Time) {
        let st = &mut self.servers[server.0 as usize];
        match st.busy.get(&start) {
            Some(&(e, j)) if e == end && j == job => {
                st.busy.remove(&start);
                self.pruned_busy_secs += (end - start).secs();
            }
            _ => panic!("retire: no reservation of {job:?} at {start} on {server:?}"),
        }
    }

    /// Drop idle periods and reservations that ended at or before `t`.
    /// Safe with respect to the slot-tree mirror as long as `t` is at or
    /// before the start of the live slot window. Completed busy seconds are
    /// accumulated for utilization accounting.
    pub fn prune_before(&mut self, t: Time) {
        for st in &mut self.servers {
            let dead: Vec<Time> = st
                .idle
                .iter()
                .take_while(|(_, id)| self.periods[id].end <= t)
                .map(|(&s, _)| s)
                .collect();
            for s in dead {
                let id = st.idle.remove(&s).unwrap();
                self.periods.remove(&id);
            }
            let done: Vec<Time> = st
                .busy
                .iter()
                .take_while(|(_, (end, _))| *end <= t)
                .map(|(&s, _)| s)
                .collect();
            for s in done {
                let (end, _) = st.busy.remove(&s).unwrap();
                self.pruned_busy_secs += (end - s).secs();
            }
        }
    }

    /// Total committed busy server-seconds with start < `until`, including
    /// pruned history. Reservations straddling `until` count only their part
    /// before it.
    pub fn busy_secs_before(&self, until: Time) -> i64 {
        let mut total = self.pruned_busy_secs;
        for st in &self.servers {
            for (&start, &(end, _)) in st.busy.range(..until) {
                total += (end.min(until) - start).secs();
            }
        }
        total
    }

    /// System utilization over `[origin, until)`: committed busy
    /// server-seconds divided by total capacity.
    pub fn utilization(&self, origin: Time, until: Time) -> f64 {
        let span = (until - origin).secs();
        if span <= 0 {
            return 0.0;
        }
        self.busy_secs_before(until) as f64 / (span as f64 * self.servers.len() as f64)
    }

    /// Verify every structural invariant (test helper): idle periods
    /// non-overlapping and sorted, reservations non-overlapping, idle and
    /// busy disjoint, exactly one open-ended trailing idle period per server,
    /// and the period map consistent with the per-server maps.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        for (s, st) in self.servers.iter().enumerate() {
            let server = ServerId(s as u32);
            let mut prev_end: Option<Time> = None;
            let mut inf_count = 0;
            for (&start, id) in &st.idle {
                let p = self.periods.get(id).expect("idle map points at live period");
                seen += 1;
                assert_eq!(p.server, server, "period on wrong server");
                assert_eq!(p.start, start, "idle map key mismatch");
                assert!(p.start < p.end, "empty idle period {p:?}");
                if let Some(pe) = prev_end {
                    assert!(p.start >= pe, "overlapping idle periods");
                }
                prev_end = Some(p.end);
                if p.end.is_inf() {
                    inf_count += 1;
                }
            }
            assert_eq!(inf_count, 1, "server {server:?} trailing-period count");
            let mut prev_busy_end: Option<Time> = None;
            for (&start, &(end, _)) in &st.busy {
                assert!(start < end, "empty reservation");
                if let Some(pe) = prev_busy_end {
                    assert!(start >= pe, "overlapping reservations");
                }
                prev_busy_end = Some(end);
                // Busy window must not intersect any idle period.
                for (_, id) in st.idle.range(..end) {
                    let p = self.periods[id];
                    assert!(
                        p.end <= start || p.start >= end,
                        "idle period {p:?} overlaps reservation [{start}, {end})"
                    );
                }
            }
        }
        assert_eq!(seen, self.periods.len(), "orphan periods in map");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_timeline_is_fully_idle() {
        let tl = Timeline::new(4, Time::ZERO);
        tl.check_invariants();
        for s in 0..4 {
            let ps = tl.idle_periods(ServerId(s));
            assert_eq!(ps.len(), 1);
            assert_eq!(ps[0].start, Time::ZERO);
            assert!(ps[0].end.is_inf());
        }
        assert_eq!(tl.utilization(Time::ZERO, Time::from_hours(1)), 0.0);
    }

    #[test]
    fn reserve_middle_splits_into_two_fragments() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        let delta = tl.reserve(p.id, JobId(1), Time(10), Time(20));
        tl.check_invariants();
        assert_eq!(delta.removed.len(), 1);
        assert_eq!(delta.added.len(), 2);
        assert_eq!(delta.added[0].start, Time::ZERO);
        assert_eq!(delta.added[0].end, Time(10));
        assert_eq!(delta.added[1].start, Time(20));
        assert!(delta.added[1].end.is_inf());
        assert_eq!(tl.idle_periods(ServerId(0)).len(), 2);
    }

    #[test]
    fn reserve_flush_left_creates_one_fragment() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        let delta = tl.reserve(p.id, JobId(1), Time::ZERO, Time(20));
        tl.check_invariants();
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].start, Time(20));
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn reserve_outside_period_panics() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        let d = tl.reserve(p.id, JobId(1), Time(10), Time(20));
        // The left fragment [0, 10) cannot host [5, 15).
        let left = d.added[0];
        tl.reserve(left.id, JobId(2), Time(5), Time(15));
    }

    #[test]
    fn release_merges_both_neighbors() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        tl.reserve(p.id, JobId(1), Time(10), Time(20));
        tl.check_invariants();
        let delta = tl.release(ServerId(0), JobId(1), Time(10), Time(20));
        tl.check_invariants();
        // Both fragments are consumed; one open-ended period remains.
        assert_eq!(delta.removed.len(), 2);
        assert_eq!(delta.added.len(), 1);
        let merged = delta.added[0];
        assert_eq!(merged.start, Time::ZERO);
        assert!(merged.end.is_inf());
        assert_eq!(tl.idle_periods(ServerId(0)).len(), 1);
    }

    #[test]
    fn release_between_two_reservations_merges_nothing() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(10), Time(20));
        let mid = d1.added[1]; // [20, inf)
        let d2 = tl.reserve(mid.id, JobId(2), Time(20), Time(30));
        let tail = d2.added[0]; // [30, inf)
        let d3 = tl.reserve(tail.id, JobId(3), Time(30), Time(40));
        assert!(d3.added.len() == 1);
        tl.check_invariants();
        // Release the middle job: its window has reservations on both sides,
        // so no coalescing happens.
        let delta = tl.release(ServerId(0), JobId(2), Time(20), Time(30));
        tl.check_invariants();
        assert!(delta.removed.is_empty());
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].start, Time(20));
        assert_eq!(delta.added[0].end, Time(30));
    }

    #[test]
    fn covering_idle_finds_the_right_period() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        tl.reserve(p.id, JobId(1), Time(10), Time(20));
        assert!(tl.covering_idle(ServerId(0), Time(0), Time(10)).is_some());
        assert!(tl.covering_idle(ServerId(0), Time(5), Time(11)).is_none());
        let trailing = tl.covering_idle(ServerId(0), Time(25), Time(1000)).unwrap();
        assert_eq!(trailing.start, Time(20));
    }

    #[test]
    fn utilization_counts_committed_work() {
        let mut tl = Timeline::new(2, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        tl.reserve(p.id, JobId(1), Time::ZERO, Time(50));
        // One of two servers busy for half the window [0, 100).
        assert!((tl.utilization(Time::ZERO, Time(100)) - 0.25).abs() < 1e-9);
        // A reservation straddling `until` counts partially.
        let p1 = tl.trailing_period(ServerId(1));
        tl.reserve(p1.id, JobId(2), Time(80), Time(200));
        let u = tl.utilization(Time::ZERO, Time(100));
        assert!((u - (50.0 + 20.0) / 200.0).abs() < 1e-9);
    }

    #[test]
    fn prune_preserves_utilization_accounting() {
        let mut tl = Timeline::new(1, Time::ZERO);
        let p = tl.trailing_period(ServerId(0));
        let d = tl.reserve(p.id, JobId(1), Time::ZERO, Time(10));
        let tail = d.added[0];
        tl.reserve(tail.id, JobId(2), Time(50), Time(60));
        let before = tl.busy_secs_before(Time(1000));
        tl.prune_before(Time(20));
        tl.check_invariants_after_prune();
        assert_eq!(tl.busy_secs_before(Time(1000)), before);
        // The finished reservation and the dead idle fragment are gone.
        assert_eq!(tl.reservations(ServerId(0)).len(), 1);
    }

    impl Timeline {
        /// After pruning, the one-trailing-period invariant still holds but
        /// early idle periods may be gone; check the rest.
        fn check_invariants_after_prune(&self) {
            self.check_invariants();
        }
    }
}
