//! The ring of `Q` live slot trees over **finite** idle periods.
//!
//! "The system always maintains `Q` trees, with each tree containing at most
//! `N` idle periods. [...] as the time advances, the tree corresponding to
//! the just expired time slot is discarded, and a new tree is created
//! (initialized) for the new slot at the end of the system's time horizon;
//! [...] these discard and initialization operations are repeated every
//! `tau` time units and take O(1) time" (Section 4.1).
//!
//! A finite idle period is mirrored into the tree of every live slot it
//! overlaps. Open-ended trailing periods (`end == Time::INF`) are *not*
//! stored here — they live once in the global [`crate::trailing`] index,
//! which is what makes the O(1) horizon-edge initialization above possible
//! (a brand-new edge tree starts empty; the periods overlapping it are
//! exactly the trailing ones, represented virtually).

use crate::idle::IdlePeriod;
use crate::primary::SlotTree;
use crate::scratch::Scratch;
use crate::stats::OpStats;
use crate::time::{SlotConfig, SlotIdx, Time};
use crate::timeline::Timeline;
use std::collections::VecDeque;

/// Ring buffer of the `Q` live slot trees.
#[derive(Clone, Debug)]
pub struct SlotRing {
    cfg: SlotConfig,
    /// Index of the first live slot.
    base: SlotIdx,
    trees: VecDeque<SlotTree>,
    seed: u64,
}

impl SlotRing {
    /// Create the ring at `origin` with `Q` empty slot trees (at start-up
    /// every server's availability is one trailing period, which lives in
    /// the trailing index, not here).
    pub fn new(cfg: SlotConfig, origin: Time, seed: u64) -> SlotRing {
        let base = cfg.slot_of(origin);
        let trees = (0..cfg.num_slots)
            .map(|i| SlotTree::new(Self::tree_seed(seed, SlotIdx(base.0 + i as i64))))
            .collect();
        SlotRing {
            cfg,
            base,
            trees,
            seed,
        }
    }

    fn tree_seed(seed: u64, q: SlotIdx) -> u64 {
        seed ^ (q.0 as u64).wrapping_mul(0x9E3779B97F4A7C15)
    }

    /// Slot geometry.
    pub fn config(&self) -> SlotConfig {
        self.cfg
    }

    /// First live slot.
    pub fn first_slot(&self) -> SlotIdx {
        self.base
    }

    /// One past the last live slot.
    pub fn end_slot(&self) -> SlotIdx {
        SlotIdx(self.base.0 + self.cfg.num_slots as i64)
    }

    /// First instant covered by the live window.
    pub fn window_start(&self) -> Time {
        self.cfg.slot_start(self.base)
    }

    /// The end of the horizon: nothing can be scheduled at or beyond this.
    pub fn horizon_end(&self) -> Time {
        self.cfg.slot_start(self.end_slot())
    }

    /// The tree for slot `q`, if it is live.
    pub fn tree(&self, q: SlotIdx) -> Option<&SlotTree> {
        if q < self.base || q >= self.end_slot() {
            return None;
        }
        Some(&self.trees[(q.0 - self.base.0) as usize])
    }

    fn tree_mut(&mut self, q: SlotIdx) -> &mut SlotTree {
        let i = (q.0 - self.base.0) as usize;
        &mut self.trees[i]
    }

    /// The inclusive live-slot range overlapped by a period, or `None` if the
    /// period misses the live window entirely.
    fn live_slots(&self, p: &IdlePeriod) -> Option<(SlotIdx, SlotIdx)> {
        let (first, last) = self.cfg.slots_overlapping(p.start, p.end)?;
        let first = SlotIdx(first.0.max(self.base.0));
        let last = SlotIdx(last.0.min(self.end_slot().0 - 1));
        (first <= last).then_some((first, last))
    }

    /// Mirror a new finite idle period into every live slot tree it
    /// overlaps. Trailing (open-ended) periods belong in the trailing
    /// index instead.
    pub fn insert_period(&mut self, p: &IdlePeriod, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.insert_period_with(p, &mut scratch, ops);
    }

    /// [`SlotRing::insert_period`] reusing the caller's scratch buffers
    /// (allocation-free once warm).
    pub fn insert_period_with(&mut self, p: &IdlePeriod, scratch: &mut Scratch, ops: &mut OpStats) {
        debug_assert!(!p.end.is_inf(), "trailing periods live in TrailingSet");
        if let Some((first, last)) = self.live_slots(p) {
            for q in first.0..=last.0 {
                self.tree_mut(SlotIdx(q)).insert_with(*p, scratch, ops);
            }
        }
    }

    /// Remove a dead finite idle period from every live slot tree it
    /// overlaps.
    pub fn remove_period(&mut self, p: &IdlePeriod, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.remove_period_with(p, &mut scratch, ops);
    }

    /// [`SlotRing::remove_period`] reusing the caller's scratch buffers
    /// (allocation-free once warm).
    pub fn remove_period_with(&mut self, p: &IdlePeriod, scratch: &mut Scratch, ops: &mut OpStats) {
        debug_assert!(!p.end.is_inf(), "trailing periods live in TrailingSet");
        if let Some((first, last)) = self.live_slots(p) {
            for q in first.0..=last.0 {
                let removed = self.tree_mut(SlotIdx(q)).remove_with(p, scratch, ops);
                debug_assert!(removed, "period {p:?} missing from slot {q}");
            }
        }
    }

    /// Advance the ring so that `now` lies in the first live slot: discard
    /// expired trees and create fresh, empty trees at the horizon edge —
    /// the paper's O(1)-per-slot maintenance.
    pub fn advance_to(&mut self, now: Time) {
        let target = self.cfg.slot_of(now);
        while self.base < target {
            self.trees.pop_front();
            let new_slot = self.end_slot(); // before bumping base
            self.base = self.base.next();
            self.trees
                .push_back(SlotTree::new(Self::tree_seed(self.seed, new_slot)));
        }
    }

    /// Check that every live slot tree contains exactly the timeline's
    /// *finite* idle periods overlapping that slot (the core mirror
    /// invariant). Test helper; panics on violation. `O(Q * N log N)` — use
    /// on small systems.
    #[doc(hidden)]
    pub fn check_mirror(&self, timeline: &Timeline) {
        use std::collections::BTreeSet;
        let mut all: Vec<IdlePeriod> = Vec::new();
        for s in 0..timeline.num_servers() {
            all.extend(
                timeline
                    .idle_periods(crate::ids::ServerId(s))
                    .into_iter()
                    .filter(|p| !p.end.is_inf()),
            );
        }
        for i in 0..self.cfg.num_slots {
            let q = SlotIdx(self.base.0 + i as i64);
            let (lo, hi) = (self.cfg.slot_start(q), self.cfg.slot_end(q));
            let expect: BTreeSet<u64> = all
                .iter()
                .filter(|p| p.start < hi && p.end > lo)
                .map(|p| p.id.0)
                .collect();
            let got: BTreeSet<u64> = self.trees[i]
                .periods_in_order()
                .iter()
                .map(|p| p.id.0)
                .collect();
            assert_eq!(got, expect, "mirror mismatch in slot {}", q.0);
            self.trees[i].check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, PeriodId, ServerId};
    use crate::time::Dur;

    fn setup(n: u32, tau: i64, slots: usize) -> (Timeline, SlotRing, OpStats) {
        let ops = OpStats::new();
        let cfg = SlotConfig::new(Dur(tau), Dur(tau * slots as i64));
        let tl = Timeline::new(n, Time::ZERO);
        let ring = SlotRing::new(cfg, Time::ZERO, 0xC0FFEE);
        (tl, ring, ops)
    }

    /// Route a timeline delta the way the scheduler does: finite periods to
    /// the ring, trailing ones dropped (they belong to the TrailingSet).
    fn apply_finite(
        ring: &mut SlotRing,
        delta: &crate::timeline::PeriodDelta,
        ops: &mut OpStats,
    ) {
        for p in delta.removed.iter().filter(|p| !p.end.is_inf()) {
            ring.remove_period(p, ops);
        }
        for p in delta.added.iter().filter(|p| !p.end.is_inf()) {
            ring.insert_period(p, ops);
        }
    }

    #[test]
    fn fresh_ring_is_empty_and_mirrors_fully_idle_timeline() {
        let (tl, ring, _) = setup(4, 10, 5);
        ring.check_mirror(&tl);
        assert_eq!(ring.window_start(), Time::ZERO);
        assert_eq!(ring.horizon_end(), Time(50));
        assert_eq!(ring.tree(SlotIdx(0)).unwrap().len(), 0);
        assert!(ring.tree(SlotIdx(5)).is_none());
        assert!(ring.tree(SlotIdx(-1)).is_none());
    }

    #[test]
    fn reserve_mirrors_only_finite_fragments() {
        let (mut tl, mut ring, mut ops) = setup(2, 10, 5);
        let p = tl.trailing_period(ServerId(0));
        // Reserve [12, 25) on server 0: fragments are [0, 12) — finite,
        // slots 0..=1 — and [25, inf) — trailing, NOT mirrored here.
        let delta = tl.reserve(p.id, JobId(1), Time(12), Time(25));
        apply_finite(&mut ring, &delta, &mut ops);
        ring.check_mirror(&tl);
        assert_eq!(ring.tree(SlotIdx(0)).unwrap().len(), 1); // [0,12)
        assert_eq!(ring.tree(SlotIdx(1)).unwrap().len(), 1);
        assert_eq!(ring.tree(SlotIdx(2)).unwrap().len(), 0);
    }

    #[test]
    fn advance_discards_and_creates_empty_edge_trees() {
        let (mut tl, mut ring, mut ops) = setup(3, 10, 4);
        let p = tl.trailing_period(ServerId(1));
        let delta = tl.reserve(p.id, JobId(7), Time(5), Time(18));
        apply_finite(&mut ring, &delta, &mut ops);
        ring.check_mirror(&tl);
        // Advance two slots.
        ring.advance_to(Time(25));
        assert_eq!(ring.first_slot(), SlotIdx(2));
        assert_eq!(ring.horizon_end(), Time(60));
        tl.prune_before(ring.window_start());
        ring.check_mirror(&tl);
        // New edge trees are empty (trailing periods are virtual).
        assert_eq!(ring.tree(SlotIdx(5)).unwrap().len(), 0);
    }

    #[test]
    fn advance_is_idempotent_within_a_slot() {
        let (tl, mut ring, _) = setup(2, 10, 4);
        ring.advance_to(Time(9));
        assert_eq!(ring.first_slot(), SlotIdx(0));
        ring.advance_to(Time(10));
        assert_eq!(ring.first_slot(), SlotIdx(1));
        ring.advance_to(Time(10));
        assert_eq!(ring.first_slot(), SlotIdx(1));
        ring.check_mirror(&tl);
    }

    #[test]
    fn release_merge_propagates_to_trees() {
        let (mut tl, mut ring, mut ops) = setup(2, 10, 6);
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(10), Time(30));
        apply_finite(&mut ring, &d1, &mut ops);
        ring.check_mirror(&tl);
        let d2 = tl.release(ServerId(0), JobId(1), Time(10), Time(30));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        // Back to no finite periods at all.
        for q in 0..6 {
            assert_eq!(ring.tree(SlotIdx(q)).unwrap().len(), 0);
        }
    }

    #[test]
    fn sandwiched_finite_period_spans_its_slots() {
        let (mut tl, mut ring, mut ops) = setup(1, 10, 6);
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(0), Time(10));
        apply_finite(&mut ring, &d1, &mut ops);
        let tail = d1.added[0]; // [10, inf)
        let d2 = tl.reserve(tail.id, JobId(2), Time(40), Time(50));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        // The finite hole [10, 40) lives in slots 1..=3 only.
        assert_eq!(ring.tree(SlotIdx(0)).unwrap().len(), 0);
        for q in 1..=3 {
            assert_eq!(ring.tree(SlotIdx(q)).unwrap().len(), 1, "slot {q}");
        }
        assert_eq!(ring.tree(SlotIdx(4)).unwrap().len(), 0);
    }

    #[test]
    fn period_outside_live_window_is_ignored() {
        let (_tl, mut ring, mut ops) = setup(1, 10, 4);
        let mut ring2 = ring.clone();
        ring.advance_to(Time(35));
        let ghost = IdlePeriod {
            id: PeriodId(999),
            server: ServerId(0),
            start: Time(0),
            end: Time(29),
        };
        ring.insert_period(&ghost, &mut ops);
        ring.remove_period(&ghost, &mut ops);
        let beyond = IdlePeriod {
            id: PeriodId(998),
            server: ServerId(0),
            start: Time(100),
            end: Time(120),
        };
        ring2.insert_period(&beyond, &mut ops);
        assert_eq!(ring2.tree(SlotIdx(3)).unwrap().len(), 0);
    }
}
