//! Segment-tree coverage of the `Q` live slots over **finite** idle periods.
//!
//! "The system always maintains `Q` trees, with each tree containing at most
//! `N` idle periods. [...] as the time advances, the tree corresponding to
//! the just expired time slot is discarded, and a new tree is created
//! (initialized) for the new slot at the end of the system's time horizon;
//! [...] these discard and initialization operations are repeated every
//! `tau` time units and take O(1) time" (Section 4.1).
//!
//! The paper mirrors every finite idle period into the tree of every live
//! slot it overlaps, which costs `O(W/tau)` tree updates per period delta
//! and `O(N * W/tau)` resident copies. This implementation deviates: the
//! `Q` live slots are the leaves of a **static segment tree** (padded to a
//! power of two `M >= Q`), each of whose `2M` canonical nodes owns one 2-D
//! [`SlotTree`]. A finite period covering slots `[first, last]` is stored
//! once in each of the `O(log Q)` canonical nodes whose leaf interval its
//! slot range decomposes into, and a Phase-1/Phase-2 query at slot `q`
//! walks the leaf-to-root *stabbing path* of `q`, running the usual
//! marking/counting in each tree it meets. Every period overlapping `q`
//! lives in exactly one node of that path, so the union of the per-node
//! results is the per-slot candidate set of the paper — see
//! [`SlotRing::check_mirror`] for the invariant and DESIGN.md §12 for why
//! the scheduler's decisions are bit-identical to per-slot mirroring.
//!
//! Ring advance keeps its O(1) amortized horizon edge: leaf positions are
//! slot indices modulo `M`, so sliding the window is just a base bump plus
//! the eviction of the periods whose last covered slot expired (tracked in
//! per-slot expiry buckets — the amortized equivalent of discarding the
//! expired slot's tree). Open-ended trailing periods (`end == Time::INF`)
//! are *not* stored here — they live once in the global [`crate::trailing`]
//! index, which is what keeps the horizon edge initialization-free (a
//! brand-new edge slot is covered by exactly the trailing periods,
//! represented virtually).

use crate::idle::IdlePeriod;
use crate::ids::PeriodId;
use crate::primary::{MarkedNode, SlotTree};
use crate::scratch::Scratch;
use crate::stats::OpStats;
use crate::time::{SlotConfig, SlotIdx, Time};
use crate::timeline::Timeline;
use std::collections::{HashMap, VecDeque};

/// Where one finite period is stored: the inclusive live-slot range it was
/// clamped to at insert time. Removal and eviction re-derive the same
/// canonical-node decomposition from it, so the period always leaves
/// exactly the nodes it entered.
#[derive(Clone, Copy, Debug)]
struct Coverage {
    period: IdlePeriod,
    first: SlotIdx,
    last: SlotIdx,
}

/// The marks of one logical Phase 1 run across a stabbing path: each
/// visited non-empty canonical tree contributes a contiguous segment of the
/// shared `marked` buffer. Phase 2 and feasibility counting replay the
/// segments tree by tree. Plain reusable data, like every [`Scratch`]
/// buffer: cleared and refilled per query, allocation-free once warm.
#[derive(Clone, Debug, Default)]
pub struct StabMarks {
    /// Canonical node indices visited, non-empty trees only.
    trees: Vec<u32>,
    /// `bounds[i]` = end of `trees[i]`'s segment within `marked`.
    bounds: Vec<u32>,
    /// Concatenated per-tree marked subtrees, in marking order.
    marked: Vec<MarkedNode>,
}

impl StabMarks {
    fn clear(&mut self) {
        self.trees.clear();
        self.bounds.clear();
        self.marked.clear();
    }
}

/// Segment tree of `2M` slot trees covering the `Q` live slots.
#[derive(Clone, Debug)]
pub struct SlotRing {
    cfg: SlotConfig,
    /// Index of the first live slot.
    base: SlotIdx,
    /// Leaf count `M`: `num_slots` padded to a power of two. Leaf positions
    /// are absolute slot indices modulo `M`.
    span: usize,
    /// `2 * span` canonical nodes, 1-indexed heap layout (`nodes[0]` is
    /// unused); node `i`'s children are `2i` and `2i + 1`, leaf for
    /// position `p` is `span + p`.
    nodes: Vec<SlotTree>,
    /// Periods currently stored, keyed by id, with their insert-time slot
    /// range (`O(N)` — the one copy-independent record of each period).
    cover: HashMap<u64, Coverage>,
    /// `num_slots` buckets; bucket `i` holds the ids whose last covered
    /// slot is `base + i`, so each advance drains exactly one bucket.
    expiry: VecDeque<Vec<u64>>,
}

impl SlotRing {
    /// Create the ring at `origin` with all-empty canonical trees (at
    /// start-up every server's availability is one trailing period, which
    /// lives in the trailing index, not here).
    pub fn new(cfg: SlotConfig, origin: Time, seed: u64) -> SlotRing {
        let base = cfg.slot_of(origin);
        let span = cfg.num_slots.next_power_of_two();
        let nodes = (0..2 * span)
            .map(|i| SlotTree::new(Self::node_seed(seed, i)))
            .collect();
        let expiry = (0..cfg.num_slots).map(|_| Vec::new()).collect();
        SlotRing {
            cfg,
            base,
            span,
            nodes,
            cover: HashMap::new(),
            expiry,
        }
    }

    fn node_seed(seed: u64, i: usize) -> u64 {
        seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
    }

    /// Slot geometry.
    pub fn config(&self) -> SlotConfig {
        self.cfg
    }

    /// First live slot.
    pub fn first_slot(&self) -> SlotIdx {
        self.base
    }

    /// One past the last live slot.
    pub fn end_slot(&self) -> SlotIdx {
        SlotIdx(self.base.0 + self.cfg.num_slots as i64)
    }

    /// First instant covered by the live window.
    pub fn window_start(&self) -> Time {
        self.cfg.slot_start(self.base)
    }

    /// The end of the horizon: nothing can be scheduled at or beyond this.
    pub fn horizon_end(&self) -> Time {
        self.cfg.slot_start(self.end_slot())
    }

    /// Whether slot `q` is inside the live window.
    pub fn is_live(&self, q: SlotIdx) -> bool {
        q >= self.base && q < self.end_slot()
    }

    /// Number of stored periods overlapping live slot `q`, or `None` if the
    /// slot is not live. `O(N)` over the cover map — test/diagnostic helper,
    /// not a query path.
    pub fn slot_len(&self, q: SlotIdx) -> Option<usize> {
        if !self.is_live(q) {
            return None;
        }
        Some(
            self.cover
                .values()
                .filter(|c| c.first <= q && q <= c.last)
                .count(),
        )
    }

    /// Number of distinct finite periods currently indexed by the ring.
    pub fn resident_periods(&self) -> usize {
        self.cover.len()
    }

    /// Total per-tree period entries across all canonical nodes (each
    /// period appears in `O(log Q)` of them).
    pub fn resident_entries(&self) -> usize {
        self.nodes.iter().map(|t| t.len()).sum()
    }

    /// Number of canonical segment-tree nodes backing the ring.
    pub fn segment_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf position of an absolute slot index: modulo `span`, so the live
    /// window (at most `num_slots <= span` slots) never self-overlaps.
    fn pos(&self, q: SlotIdx) -> usize {
        q.0.rem_euclid(self.span as i64) as usize
    }

    /// Append the canonical-node decomposition of the leaf-position range
    /// `[a, b]` (non-wrapping, inclusive) to `out`.
    fn push_canonical_range(&self, a: usize, b: usize, out: &mut Vec<u32>) {
        let mut l = a + self.span;
        let mut r = b + self.span + 1;
        while l < r {
            if l & 1 == 1 {
                out.push(l as u32);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                out.push(r as u32);
            }
            l >>= 1;
            r >>= 1;
        }
    }

    /// Append the canonical nodes covering the absolute slot range
    /// `[first, last]` (inclusive, at most `span` slots long — it may wrap
    /// once around the modulus).
    fn push_canonical(&self, first: SlotIdx, last: SlotIdx, out: &mut Vec<u32>) {
        debug_assert!(first <= last && (last.0 - first.0) < self.span as i64);
        let a = self.pos(first);
        let b = self.pos(last);
        if a <= b {
            self.push_canonical_range(a, b, out);
        } else {
            self.push_canonical_range(a, self.span - 1, out);
            self.push_canonical_range(0, b, out);
        }
    }

    /// The inclusive live-slot range overlapped by a period, or `None` if the
    /// period misses the live window entirely.
    fn live_slots(&self, p: &IdlePeriod) -> Option<(SlotIdx, SlotIdx)> {
        let (first, last) = self.cfg.slots_overlapping(p.start, p.end)?;
        let first = SlotIdx(first.0.max(self.base.0));
        let last = SlotIdx(last.0.min(self.end_slot().0 - 1));
        (first <= last).then_some((first, last))
    }

    /// Store a new finite idle period in the `O(log Q)` canonical nodes
    /// covering its live-slot range. Trailing (open-ended) periods belong
    /// in the trailing index instead.
    pub fn insert_period(&mut self, p: &IdlePeriod, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.insert_period_with(p, &mut scratch, ops);
    }

    /// [`SlotRing::insert_period`] reusing the caller's scratch buffers
    /// (allocation-free once warm).
    pub fn insert_period_with(&mut self, p: &IdlePeriod, scratch: &mut Scratch, ops: &mut OpStats) {
        debug_assert!(!p.end.is_inf(), "trailing periods live in TrailingSet");
        let Some((first, last)) = self.live_slots(p) else {
            return;
        };
        ops.ring_period_inserts += 1;
        let prev = self.cover.insert(
            p.id.0,
            Coverage {
                period: *p,
                first,
                last,
            },
        );
        debug_assert!(prev.is_none(), "period {p:?} inserted twice");
        self.expiry[(last.0 - self.base.0) as usize].push(p.id.0);
        let mut canon = std::mem::take(&mut scratch.canon);
        canon.clear();
        self.push_canonical(first, last, &mut canon);
        for &n in &canon {
            self.nodes[n as usize].insert_with(*p, scratch, ops);
        }
        scratch.canon = canon;
    }

    /// Remove a dead finite idle period from its canonical nodes. Unknown
    /// periods (never stored, or already evicted because their last slot
    /// expired) are ignored, mirroring the insert-side clamping.
    pub fn remove_period(&mut self, p: &IdlePeriod, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.remove_period_with(p, &mut scratch, ops);
    }

    /// [`SlotRing::remove_period`] reusing the caller's scratch buffers
    /// (allocation-free once warm).
    pub fn remove_period_with(&mut self, p: &IdlePeriod, scratch: &mut Scratch, ops: &mut OpStats) {
        debug_assert!(!p.end.is_inf(), "trailing periods live in TrailingSet");
        let Some(cov) = self.cover.remove(&p.id.0) else {
            // Never stored (outside the live window at insert time) or
            // already evicted. The expiry bucket may still hold a tombstone
            // id; advance skips it via the failed cover lookup.
            return;
        };
        ops.ring_period_removes += 1;
        let mut canon = std::mem::take(&mut scratch.canon);
        canon.clear();
        self.push_canonical(cov.first, cov.last, &mut canon);
        for &n in &canon {
            let removed = self.nodes[n as usize].remove_with(p, scratch, ops);
            debug_assert!(removed, "period {p:?} missing from canonical node {n}");
        }
        scratch.canon = canon;
    }

    /// Advance the ring so that `now` lies in the first live slot,
    /// allocating private scratch space. Prefer
    /// [`SlotRing::advance_to_with`] on hot paths.
    pub fn advance_to(&mut self, now: Time, ops: &mut OpStats) {
        let mut scratch = Scratch::new();
        self.advance_to_with(now, &mut scratch, ops);
    }

    /// Advance the live window: bump the base slot and evict the periods
    /// whose last covered slot expired — the amortized-O(1) equivalent of
    /// the paper's discard-and-initialize step (each period is evicted at
    /// most once in its lifetime, and the freshly exposed horizon-edge slot
    /// needs no initialization at all).
    pub fn advance_to_with(&mut self, now: Time, scratch: &mut Scratch, ops: &mut OpStats) {
        let target = self.cfg.slot_of(now);
        while self.base < target {
            let mut bucket = self.expiry.pop_front().expect("Q expiry buckets");
            self.base = self.base.next();
            for id in bucket.drain(..) {
                let Some(cov) = self.cover.remove(&id) else {
                    continue; // explicitly removed earlier; stale bucket id
                };
                ops.ring_evictions += 1;
                let mut canon = std::mem::take(&mut scratch.canon);
                canon.clear();
                self.push_canonical(cov.first, cov.last, &mut canon);
                for &n in &canon {
                    let removed = self.nodes[n as usize].remove_with(&cov.period, scratch, ops);
                    debug_assert!(removed, "evicted period {:?} missing from node {n}", cov.period);
                }
                scratch.canon = canon;
            }
            self.expiry.push_back(bucket);
        }
    }

    // ------------------------------------------------------------------
    // Stabbing-path queries
    // ------------------------------------------------------------------

    /// One logical Phase 1 at live slot `q`: walk the leaf-to-root stabbing
    /// path, run the subtree-size candidate count in every non-empty tree
    /// on it, and record the per-tree marked segments in `stab` for Phase 2.
    /// Returns the summed candidate count.
    ///
    /// The count may include *aliased* periods (stored for a long-expired
    /// slot that maps to the same leaf modulo `M`); those always fail the
    /// Phase-2 end check, so callers using the count only for the
    /// `candidates < n` early exit reach the same reject either way (see
    /// DESIGN.md §12).
    pub fn phase1_candidates_into(
        &self,
        q: SlotIdx,
        start: Time,
        stab: &mut StabMarks,
        ops: &mut OpStats,
    ) -> usize {
        assert!(self.is_live(q), "slot {q:?} outside the live window");
        ops.phase1_searches += 1;
        stab.clear();
        let mut count = 0usize;
        let mut i = self.span + self.pos(q);
        loop {
            let tree = &self.nodes[i];
            if !tree.is_empty() {
                count += tree.phase1_candidates_append(start, &mut stab.marked, ops);
                stab.trees.push(i as u32);
                stab.bounds.push(stab.marked.len() as u32);
            }
            if i == 1 {
                break;
            }
            i >>= 1;
        }
        count
    }

    /// One logical Phase 2 over the marks of a preceding
    /// [`SlotRing::phase1_candidates_into`]: append the ids of feasible
    /// periods (`et_i >= end`) to `out`, tree by tree along the stabbing
    /// path. `limit` caps the *total* length of `out`.
    pub fn phase2_feasible_into(
        &self,
        end: Time,
        stab: &StabMarks,
        limit: usize,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) {
        ops.phase2_searches += 1;
        let mut lo = 0usize;
        for (k, &t) in stab.trees.iter().enumerate() {
            let hi = stab.bounds[k] as usize;
            self.nodes[t as usize].phase2_collect(&stab.marked[lo..hi], end, limit, out, ops);
            lo = hi;
        }
    }

    /// Count (without retrieving) the feasible periods among the Phase-1
    /// marks — the counting twin of [`SlotRing::phase2_feasible_into`].
    pub fn count_feasible(&self, end: Time, stab: &StabMarks, ops: &mut OpStats) -> usize {
        let mut count = 0usize;
        let mut lo = 0usize;
        for (k, &t) in stab.trees.iter().enumerate() {
            let hi = stab.bounds[k] as usize;
            count += self.nodes[t as usize].count_feasible(&stab.marked[lo..hi], end, ops);
            lo = hi;
        }
        count
    }

    /// Convenience composition of both phases: append up to `limit` feasible
    /// period ids for a job occupying `[start, end)` at live slot `q`.
    #[allow(clippy::too_many_arguments)]
    pub fn find_feasible_into(
        &self,
        q: SlotIdx,
        start: Time,
        end: Time,
        limit: usize,
        stab: &mut StabMarks,
        out: &mut Vec<PeriodId>,
        ops: &mut OpStats,
    ) {
        let count = self.phase1_candidates_into(q, start, stab, ops);
        if count > 0 {
            self.phase2_feasible_into(end, stab, limit, out, ops);
        }
    }

    /// Check the segment-tree coverage invariants against the timeline.
    /// Test helper; panics on violation. `O(Q * N log Q)` — use on small
    /// systems.
    ///
    /// 1. The cover map holds exactly the timeline's finite periods
    ///    overlapping the live window.
    /// 2. Every covered period is stored in exactly the canonical nodes of
    ///    its recorded slot range (no strays anywhere in the segment tree).
    /// 3. Per live slot, the stabbing-path union contains exactly the
    ///    periods overlapping that slot, plus only *benign* aliases (last
    ///    covered slot strictly in the past, hence never Phase-2 feasible).
    /// 4. Expiry buckets cover every stored period at its last slot.
    #[doc(hidden)]
    pub fn check_mirror(&self, timeline: &Timeline) {
        use std::collections::{BTreeMap, BTreeSet};
        let (ws, he) = (self.window_start(), self.horizon_end());
        let mut live: BTreeMap<u64, IdlePeriod> = BTreeMap::new();
        for s in 0..timeline.num_servers() {
            for p in timeline.idle_periods(crate::ids::ServerId(s)) {
                if !p.end.is_inf() && p.start < he && p.end > ws {
                    live.insert(p.id.0, p);
                }
            }
        }
        // 1. Cover map == live finite periods; ranges are sane.
        let covered: BTreeSet<u64> = self.cover.keys().copied().collect();
        let expected: BTreeSet<u64> = live.keys().copied().collect();
        assert_eq!(covered, expected, "cover map out of sync with timeline");
        for (id, cov) in &self.cover {
            let p = &live[id];
            assert_eq!(cov.period.id.0, *id);
            assert!(cov.first <= cov.last);
            assert!(cov.last >= self.base && cov.last < self.end_slot());
            assert!(cov.first >= self.cfg.slot_of(p.start));
            // first = max(slot_of(start), base-at-insert) for some past base.
            assert!(
                cov.first == self.cfg.slot_of(p.start) || cov.first <= self.base,
                "cover range start of {p:?} matches neither its slot nor a past base"
            );
            assert_eq!(cov.last.0, self.cfg.slot_of(Time(p.end.0 - 1)).0.min(cov.last.0));
        }
        // 2. Exact canonical storage: node -> ids from the trees must equal
        // node -> ids recomputed from the cover map.
        let mut stored: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
        for (n, tree) in self.nodes.iter().enumerate() {
            tree.check_invariants();
            for p in tree.periods_in_order() {
                assert!(
                    stored.entry(n as u32).or_default().insert(p.id.0),
                    "duplicate period {p:?} in node {n}"
                );
            }
        }
        let mut want: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
        let mut canon = Vec::new();
        for (id, cov) in &self.cover {
            canon.clear();
            self.push_canonical(cov.first, cov.last, &mut canon);
            for &n in &canon {
                assert!(
                    want.entry(n).or_default().insert(*id),
                    "canonical decomposition of {cov:?} repeats node {n}"
                );
            }
        }
        assert_eq!(stored, want, "canonical-node storage out of sync");
        // 3. Stabbing unions per live slot.
        for i in 0..self.cfg.num_slots {
            let q = SlotIdx(self.base.0 + i as i64);
            let (lo, hi) = (self.cfg.slot_start(q), self.cfg.slot_end(q));
            let overlap: BTreeSet<u64> = live
                .values()
                .filter(|p| p.start < hi && p.end > lo)
                .map(|p| p.id.0)
                .collect();
            let by_range: BTreeSet<u64> = self
                .cover
                .iter()
                .filter(|(_, c)| c.first <= q && q <= c.last)
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(by_range, overlap, "cover ranges disagree with overlap in slot {q:?}");
            let mut stab = BTreeSet::new();
            let mut n = self.span + self.pos(q);
            loop {
                stab.extend(self.nodes[n].periods_in_order().iter().map(|p| p.id.0));
                if n == 1 {
                    break;
                }
                n >>= 1;
            }
            assert!(
                stab.is_superset(&overlap),
                "stabbing path at slot {q:?} misses covered periods"
            );
            for id in stab.difference(&overlap) {
                let cov = &self.cover[id];
                assert!(
                    cov.last < q,
                    "alias {:?} on the stabbing path of slot {q:?} is not benign",
                    cov.period
                );
            }
        }
        // 4. Expiry buckets reference every stored period at its last slot.
        for (id, cov) in &self.cover {
            let bucket = &self.expiry[(cov.last.0 - self.base.0) as usize];
            assert!(
                bucket.contains(id),
                "period {:?} missing from its expiry bucket",
                cov.period
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, PeriodId, ServerId};
    use crate::time::Dur;

    fn setup(n: u32, tau: i64, slots: usize) -> (Timeline, SlotRing, OpStats) {
        let ops = OpStats::new();
        let cfg = SlotConfig::new(Dur(tau), Dur(tau * slots as i64));
        let tl = Timeline::new(n, Time::ZERO);
        let ring = SlotRing::new(cfg, Time::ZERO, 0xC0FFEE);
        (tl, ring, ops)
    }

    /// Route a timeline delta the way the scheduler does: finite periods to
    /// the ring, trailing ones dropped (they belong to the TrailingSet).
    fn apply_finite(
        ring: &mut SlotRing,
        delta: &crate::timeline::PeriodDelta,
        ops: &mut OpStats,
    ) {
        for p in delta.removed.iter().filter(|p| !p.end.is_inf()) {
            ring.remove_period(p, ops);
        }
        for p in delta.added.iter().filter(|p| !p.end.is_inf()) {
            ring.insert_period(p, ops);
        }
    }

    /// The finite fragment created by a reservation (reserving the middle
    /// of a trailing period removes it and adds hole + new tail).
    fn finite_added(delta: &crate::timeline::PeriodDelta) -> IdlePeriod {
        *delta
            .added
            .iter()
            .find(|p| !p.end.is_inf())
            .expect("delta adds a finite fragment")
    }

    /// Feasible-set query via the public stabbing-path API.
    fn feasible_ids(ring: &SlotRing, q: SlotIdx, start: Time, end: Time) -> Vec<u64> {
        let mut stab = StabMarks::default();
        let mut out = Vec::new();
        let mut ops = OpStats::new();
        ring.find_feasible_into(q, start, end, usize::MAX, &mut stab, &mut out, &mut ops);
        let mut ids: Vec<u64> = out.iter().map(|id| id.0).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn fresh_ring_is_empty_and_mirrors_fully_idle_timeline() {
        let (tl, ring, _) = setup(4, 10, 5);
        ring.check_mirror(&tl);
        assert_eq!(ring.window_start(), Time::ZERO);
        assert_eq!(ring.horizon_end(), Time(50));
        assert_eq!(ring.slot_len(SlotIdx(0)), Some(0));
        assert_eq!(ring.slot_len(SlotIdx(5)), None);
        assert_eq!(ring.slot_len(SlotIdx(-1)), None);
        assert_eq!(ring.resident_periods(), 0);
        assert_eq!(ring.resident_entries(), 0);
        // Q = 5 pads to M = 8 leaves: 16 canonical nodes.
        assert_eq!(ring.segment_nodes(), 16);
    }

    #[test]
    fn reserve_covers_only_finite_fragments() {
        let (mut tl, mut ring, mut ops) = setup(2, 10, 5);
        let p = tl.trailing_period(ServerId(0));
        // Reserve [12, 25) on server 0: fragments are [0, 12) — finite,
        // slots 0..=1 — and [25, inf) — trailing, NOT stored here.
        let delta = tl.reserve(p.id, JobId(1), Time(12), Time(25));
        apply_finite(&mut ring, &delta, &mut ops);
        ring.check_mirror(&tl);
        assert_eq!(ring.slot_len(SlotIdx(0)), Some(1)); // [0,12)
        assert_eq!(ring.slot_len(SlotIdx(1)), Some(1));
        assert_eq!(ring.slot_len(SlotIdx(2)), Some(0));
        assert_eq!(ring.resident_periods(), 1);
        assert_eq!(ops.ring_period_inserts, 1);
        // One logical period, O(log Q) canonical copies — never one per slot.
        assert!(ring.resident_entries() <= 2);
    }

    #[test]
    fn advance_evicts_expired_periods() {
        let (mut tl, mut ring, mut ops) = setup(3, 10, 4);
        let p = tl.trailing_period(ServerId(1));
        let delta = tl.reserve(p.id, JobId(7), Time(5), Time(18));
        apply_finite(&mut ring, &delta, &mut ops);
        ring.check_mirror(&tl);
        assert_eq!(ring.resident_periods(), 1); // [0, 5): slot 0 only
        // Advance two slots: [0, 5) expired with slot 0.
        ring.advance_to(Time(25), &mut ops);
        assert_eq!(ring.first_slot(), SlotIdx(2));
        assert_eq!(ring.horizon_end(), Time(60));
        assert_eq!(ops.ring_evictions, 1);
        assert_eq!(ring.resident_periods(), 0);
        assert_eq!(ring.resident_entries(), 0);
        tl.prune_before(ring.window_start());
        ring.check_mirror(&tl);
        assert_eq!(ring.slot_len(SlotIdx(5)), Some(0));
    }

    #[test]
    fn advance_is_idempotent_within_a_slot() {
        let (tl, mut ring, mut ops) = setup(2, 10, 4);
        ring.advance_to(Time(9), &mut ops);
        assert_eq!(ring.first_slot(), SlotIdx(0));
        ring.advance_to(Time(10), &mut ops);
        assert_eq!(ring.first_slot(), SlotIdx(1));
        ring.advance_to(Time(10), &mut ops);
        assert_eq!(ring.first_slot(), SlotIdx(1));
        ring.check_mirror(&tl);
    }

    #[test]
    fn release_merge_propagates_to_trees() {
        let (mut tl, mut ring, mut ops) = setup(2, 10, 6);
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(10), Time(30));
        apply_finite(&mut ring, &d1, &mut ops);
        ring.check_mirror(&tl);
        let d2 = tl.release(ServerId(0), JobId(1), Time(10), Time(30));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        // Back to no finite periods at all.
        assert_eq!(ring.resident_periods(), 0);
        assert_eq!(ring.resident_entries(), 0);
        for q in 0..6 {
            assert_eq!(ring.slot_len(SlotIdx(q)), Some(0));
        }
    }

    #[test]
    fn sandwiched_finite_period_spans_its_slots() {
        let (mut tl, mut ring, mut ops) = setup(1, 10, 6);
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(0), Time(10));
        apply_finite(&mut ring, &d1, &mut ops);
        let tail = d1.added[0]; // [10, inf)
        let d2 = tl.reserve(tail.id, JobId(2), Time(40), Time(50));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        // The finite hole [10, 40) lives in slots 1..=3 only.
        assert_eq!(ring.slot_len(SlotIdx(0)), Some(0));
        for q in 1..=3 {
            assert_eq!(ring.slot_len(SlotIdx(q)), Some(1), "slot {q}");
        }
        assert_eq!(ring.slot_len(SlotIdx(4)), Some(0));
        // Stabbing queries agree: the hole is feasible from any of its
        // slots, invisible outside them.
        let hole = finite_added(&d2);
        assert_eq!(feasible_ids(&ring, SlotIdx(1), Time(10), Time(40)), vec![hole.id.0]);
        assert_eq!(feasible_ids(&ring, SlotIdx(3), Time(35), Time(40)), vec![hole.id.0]);
        assert_eq!(feasible_ids(&ring, SlotIdx(4), Time(45), Time(50)), Vec::<u64>::new());
    }

    #[test]
    fn period_outside_live_window_is_ignored() {
        let (_tl, mut ring, mut ops) = setup(1, 10, 4);
        let mut ring2 = ring.clone();
        ring.advance_to(Time(35), &mut ops);
        let ghost = IdlePeriod {
            id: PeriodId(999),
            server: ServerId(0),
            start: Time(0),
            end: Time(29),
        };
        ring.insert_period(&ghost, &mut ops);
        ring.remove_period(&ghost, &mut ops);
        assert_eq!(ops.ring_period_inserts, 0);
        assert_eq!(ops.ring_period_removes, 0);
        let beyond = IdlePeriod {
            id: PeriodId(998),
            server: ServerId(0),
            start: Time(100),
            end: Time(120),
        };
        ring2.insert_period(&beyond, &mut ops);
        assert_eq!(ring2.slot_len(SlotIdx(3)), Some(0));
    }

    #[test]
    fn wrapped_coverage_stays_consistent_across_rotation() {
        // Rotate the window far enough that period coverage wraps the
        // power-of-two leaf modulus, then check storage and queries.
        let (mut tl, mut ring, mut ops) = setup(1, 10, 6); // M = 8
        ring.advance_to(Time(50), &mut ops); // base slot 5; window [50, 110)
        tl.prune_before(Time(50));
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(50), Time(60));
        apply_finite(&mut ring, &d1, &mut ops);
        // The reservation also leaves a dead front fragment [0, 50), which
        // the ring ignores (it ends at the window start).
        let tail = *d1.added.iter().find(|p| p.end.is_inf()).unwrap(); // [60, inf)
        // Hole [60, 100) covers slots 6..=9 — positions 6, 7, 0, 1: wrapped.
        let d2 = tl.reserve(tail.id, JobId(2), Time(100), Time(110));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        let hole = finite_added(&d2);
        assert_eq!(feasible_ids(&ring, SlotIdx(6), Time(60), Time(100)), vec![hole.id.0]);
        assert_eq!(feasible_ids(&ring, SlotIdx(9), Time(95), Time(100)), vec![hole.id.0]);
        // Slot 5 precedes the hole: not feasible there.
        assert_eq!(feasible_ids(&ring, SlotIdx(5), Time(55), Time(60)), Vec::<u64>::new());
        // Advance across the hole: it is evicted exactly when slot 9 dies.
        ring.advance_to(Time(90), &mut ops);
        assert_eq!(ring.resident_periods(), 1);
        ring.advance_to(Time(100), &mut ops);
        assert_eq!(ring.resident_periods(), 0);
        assert_eq!(ring.resident_entries(), 0);
        tl.prune_before(ring.window_start());
        ring.check_mirror(&tl);
    }

    #[test]
    fn aliased_periods_are_never_feasible() {
        // A period stored for slot q must not satisfy queries at q + k*M
        // after rotation, even though both map to the same leaf.
        let (mut tl, mut ring, mut ops) = setup(1, 10, 6); // M = 8
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(0), Time(10));
        apply_finite(&mut ring, &d1, &mut ops);
        let tail = d1.added[0];
        let d2 = tl.reserve(tail.id, JobId(2), Time(30), Time(40));
        apply_finite(&mut ring, &d2, &mut ops);
        let hole = finite_added(&d2); // [10, 30): slots 1..=2
        assert_eq!(feasible_ids(&ring, SlotIdx(1), Time(10), Time(30)), vec![hole.id.0]);
        // Rotate so slot 9 (position 1 mod 8) becomes live while the hole,
        // now expired, would still be on the stabbing path if not evicted.
        // Eviction removes it; even *before* eviction the Phase-2 end check
        // rejects it (end 30 < any live query's end), which check_mirror's
        // benign-alias rule asserts structurally. Here, after advance, the
        // union is simply empty.
        ring.advance_to(Time(40), &mut ops);
        tl.prune_before(Time(40));
        ring.check_mirror(&tl);
        assert_eq!(feasible_ids(&ring, SlotIdx(9), Time(90), Time(95)), Vec::<u64>::new());
        assert_eq!(ring.resident_periods(), 0);
    }

    #[test]
    fn canonical_copies_stay_logarithmic() {
        // A period spanning all Q slots costs O(log Q) canonical entries,
        // not Q mirrored copies.
        let (mut tl, mut ring, mut ops) = setup(1, 10, 64); // M = 64
        let p = tl.trailing_period(ServerId(0));
        let d1 = tl.reserve(p.id, JobId(1), Time(0), Time(10));
        apply_finite(&mut ring, &d1, &mut ops);
        let tail = d1.added[0];
        let d2 = tl.reserve(tail.id, JobId(2), Time(630), Time(640));
        apply_finite(&mut ring, &d2, &mut ops);
        ring.check_mirror(&tl);
        // Reserving [0, 10) leaves no front fragment, so the spanning hole
        // [10, 630) — slots 1..=62 — is the only resident period, and its
        // canonical decomposition is at most 2 * log2(64) = 12 nodes.
        assert_eq!(ring.resident_periods(), 1);
        assert!(
            ring.resident_entries() <= 12,
            "entries {} exceed the canonical bound",
            ring.resident_entries()
        );
        let before = ops.update_visits;
        let d3 = tl.release(ServerId(0), JobId(2), Time(630), Time(640));
        apply_finite(&mut ring, &d3, &mut ops);
        ring.check_mirror(&tl);
        // Removing the spanning hole touched O(log Q) trees, far fewer than
        // the 62 per-slot copies the mirrored design would pay.
        assert!(ops.update_visits - before < 62 * 2);
    }
}
