//! Free-capacity profile: an aggregate busy-count index over the slot ring.
//!
//! The retry loop of [`crate::scheduler::CoAllocScheduler::submit`] shifts a
//! rejected start by `Delta_t` up to `R_max` times, re-running Phase 1 +
//! Phase 2 from scratch at every attempt even though most shifted windows are
//! just as full as the one before. [`FreeProfile`] is the aggregate structure
//! that lets the loop *jump* over provably-failing starts: a lazy segment
//! tree over the live slot window holding, per slot `q`, the number of
//! reservations that **fully cover** `q` (`slot_start(q) >= start` and
//! `slot_end(q) <= end`, i.e. rounded *inward*).
//!
//! ## Why the count is a valid bound
//!
//! A server's reservations are pairwise disjoint, so at most one reservation
//! per server can fully cover a given slot: the per-slot count `B[q]` is the
//! number of **distinct servers** that are busy throughout slot `q`. A server
//! busy throughout a slot intersecting a request window `[s, e)` is busy at
//! some instant of the window, so it cannot host the job; with `N` servers,
//! at most `N - max B[q]` (over the intersecting slots) can be free
//! throughout the window. Whenever that upper bound is below `n_r`, the
//! two-phase search *provably* rejects the attempt — skipping it cannot
//! change any decision. The bound is not tight (a reservation shorter than a
//! slot, or straddling a boundary without covering either side, contributes
//! nothing), which is exactly what makes it sound: the profile only ever
//! skips attempts the full search would also have rejected.
//!
//! ## Maintenance
//!
//! The profile is fed from the same grant/release flow that drives the
//! [`crate::ring::SlotRing`]: `add` on commit, `remove` on release, both
//! clamped to the live window, and `advance_to` zeroes the leaves of expired
//! slots so their positions can be reused by new horizon-edge slots. Because
//! every covered slot of a reservation lies inside the live window at commit
//! time and expired slots are zeroed on rotation, removal clamped to the
//! *current* window is always exact — no per-reservation bookkeeping is
//! needed, and a profile rebuilt from a snapshot's busy set is
//! leaf-identical to the live one (see DESIGN.md §14).
//!
//! All queries and steady-state maintenance are allocation-free; memory is
//! two `Vec<i64>` of `2 * Q.next_power_of_two()` nodes allocated at
//! construction.

use crate::time::{Dur, SlotConfig, SlotIdx, Time};
use obs::LazyCounter;

// Profile maintenance metrics: incremental range updates from the
// grant/release flow, and leaves zeroed by window rotation.
static PROFILE_UPDATES: LazyCounter = LazyCounter::new("sched_profile_updates_total");
static PROFILE_SLOTS_ROTATED: LazyCounter = LazyCounter::new("sched_profile_slots_rotated_total");

/// Aggregate count-of-busy-servers-over-time index (see the module docs).
///
/// Two queries, both `O(log Q)`:
///
/// * [`FreeProfile::free_upper_bound`] — how many servers *could* be free
///   throughout a window;
/// * [`FreeProfile::next_allowed`] — the earliest `Delta_t`-aligned attempt
///   the bound does not reject.
#[derive(Clone, Debug)]
pub struct FreeProfile {
    slot_cfg: SlotConfig,
    num_servers: u32,
    /// Leaf count: `num_slots.next_power_of_two()`. Absolute slot `q` lives
    /// at leaf `q mod m`; the live window spans at most `num_slots <= m`
    /// consecutive slots, so live slots never collide.
    m: usize,
    /// Absolute index of the first live slot (mirrors the ring's base).
    base: i64,
    /// Subtree maxima, *including* the node's own pending add but excluding
    /// ancestors' (non-pushing lazy scheme). Node `i` has children `2i` and
    /// `2i + 1`; leaves are `m..2m`.
    max: Vec<i64>,
    /// Pending range adds, applied to the whole subtree.
    lazy: Vec<i64>,
}

impl FreeProfile {
    /// An all-free profile over `num_servers` servers with the live window
    /// starting at `now`.
    pub fn new(slot_cfg: SlotConfig, num_servers: u32, now: Time) -> FreeProfile {
        let m = slot_cfg.num_slots.next_power_of_two();
        FreeProfile {
            slot_cfg,
            num_servers,
            m,
            base: slot_cfg.slot_of(now).0,
            max: vec![0; 2 * m],
            lazy: vec![0; 2 * m],
        }
    }

    /// Zero every slot and move the window start to `now` (snapshot-restore
    /// support: the caller re-adds the restored busy set afterwards).
    pub fn reset(&mut self, now: Time) {
        self.base = self.slot_cfg.slot_of(now).0;
        self.max.fill(0);
        self.lazy.fill(0);
    }

    /// First live slot.
    pub fn base_slot(&self) -> SlotIdx {
        SlotIdx(self.base)
    }

    /// Rotate the window forward to contain `now`: expired slots are zeroed
    /// so their leaves can host the new horizon-edge slots (which are empty
    /// by construction — nothing can have been committed there yet).
    pub fn advance_to(&mut self, now: Time) {
        let target = self.slot_cfg.slot_of(now).0;
        if target <= self.base {
            return;
        }
        let advanced = target - self.base;
        PROFILE_SLOTS_ROTATED.add(advanced as u64);
        if advanced >= self.m as i64 {
            // The whole window expired; nothing to carry over.
            self.base = target;
            self.max.fill(0);
            self.lazy.fill(0);
            return;
        }
        for q in self.base..target {
            let pos = q.rem_euclid(self.m as i64) as usize;
            let v = self.point_value(pos);
            if v != 0 {
                self.add_leaves(pos, pos + 1, -v);
            }
        }
        self.base = target;
    }

    /// Charge `servers` reservations of `[start, end)` into the profile
    /// (call once per grant with the number of servers granted, or per
    /// reservation with `1` — the sums are identical).
    pub fn add(&mut self, start: Time, end: Time, servers: u32) {
        self.apply(start, end, servers as i64);
    }

    /// Withdraw `servers` reservations of `[start, end)`. Clamping makes
    /// this exact for *any* committed reservation, including ones whose
    /// covered slots have partially or fully expired (those leaves were
    /// zeroed by [`FreeProfile::advance_to`], and the clamp skips them).
    pub fn remove(&mut self, start: Time, end: Time, servers: u32) {
        self.apply(start, end, -(servers as i64));
    }

    fn apply(&mut self, start: Time, end: Time, delta: i64) {
        if delta == 0 {
            return;
        }
        let tau = self.slot_cfg.tau.secs();
        // Inward rounding: only slots fully inside [start, end) count.
        let q_first = start.secs().div_euclid(tau)
            + i64::from(start.secs().rem_euclid(tau) != 0);
        let q_end = end.secs().div_euclid(tau); // exclusive
        let lo = q_first.max(self.base);
        let hi = q_end.min(self.base + self.m as i64);
        if lo >= hi {
            return;
        }
        PROFILE_UPDATES.inc();
        let pos = lo.rem_euclid(self.m as i64) as usize;
        let len = (hi - lo) as usize;
        if pos + len <= self.m {
            self.add_leaves(pos, pos + len, delta);
        } else {
            self.add_leaves(pos, self.m, delta);
            self.add_leaves(0, pos + len - self.m, delta);
        }
    }

    /// Upper bound on the number of servers free throughout `[start, end)`.
    /// Slots outside the live window contribute no information (the window
    /// is clamped), so the bound is sound for any in-horizon request window.
    pub fn free_upper_bound(&self, start: Time, end: Time) -> u32 {
        let Some((lo, hi)) = self.clamped_slots(start, end) else {
            return self.num_servers;
        };
        let busy = self.range_max(lo, hi + 1);
        self.num_servers - (busy.min(self.num_servers as i64).max(0) as u32)
    }

    /// The earliest attempt index `k` in `[k_from, k_limit)` whose window
    /// `[earliest + k*step, earliest + k*step + duration)` the profile
    /// cannot reject — i.e. every intersecting live slot leaves at least
    /// `servers` servers possibly free. Returns `None` when every remaining
    /// attempt is provably infeasible.
    ///
    /// Every index skipped over is provably failing: the search walks from
    /// the *rightmost* blocking slot of the current window, and any start
    /// before that slot's end still intersects it (the window only shifts
    /// right), so the same blocker rejects it. Each iteration moves past a
    /// strictly later blocker, bounding the walk by the window slot count.
    pub fn next_allowed(
        &self,
        earliest: Time,
        step: Dur,
        duration: Dur,
        servers: u32,
        k_from: u64,
        k_limit: u64,
    ) -> Option<u64> {
        debug_assert!(step.secs() > 0 && duration.secs() > 0);
        let thresh = self.num_servers.saturating_sub(servers) as i64;
        let mut k = k_from;
        while k < k_limit {
            let start = earliest + step * (k as i64);
            let end = start + duration;
            let Some((lo, hi)) = self.clamped_slots(start, end) else {
                // No live slot intersects the window — no information, so
                // the attempt cannot be rejected from here.
                return Some(k);
            };
            let Some(blocker) = self.rightmost_above(lo, hi + 1, thresh) else {
                return Some(k);
            };
            // Jump to the first attempt starting at or after the blocking
            // slot's end; everything before it still intersects the blocker.
            let min_start = (blocker + 1) * self.slot_cfg.tau.secs();
            let delta = min_start - earliest.secs();
            let k_next = if delta <= 0 {
                k + 1
            } else {
                (delta + step.secs() - 1).div_euclid(step.secs()) as u64
            };
            k = k_next.max(k + 1);
        }
        None
    }

    /// The busy count stored for slot `q` (test/diagnostic helper).
    pub fn busy_in_slot(&self, q: SlotIdx) -> u32 {
        if q.0 < self.base || q.0 >= self.base + self.m as i64 {
            return 0;
        }
        let pos = q.0.rem_euclid(self.m as i64) as usize;
        self.point_value(pos).max(0) as u32
    }

    /// Cross-check every live slot's count against a brute-force recount of
    /// the given reservations (test helper; expensive).
    #[doc(hidden)]
    pub fn check_against<I: Iterator<Item = (Time, Time)> + Clone>(&self, reservations: I) {
        let tau = self.slot_cfg.tau.secs();
        for q in self.base..self.base + self.slot_cfg.num_slots as i64 {
            let (s, e) = (q * tau, (q + 1) * tau);
            let expect = reservations
                .clone()
                .filter(|&(rs, re)| rs.secs() <= s && re.secs() >= e)
                .count() as u32;
            assert_eq!(
                self.busy_in_slot(SlotIdx(q)),
                expect,
                "profile count diverges at slot {q}"
            );
        }
    }

    /// Inclusive clamped range of live slots intersecting `[start, end)`, as
    /// absolute indices; `None` if no live slot intersects.
    #[inline]
    fn clamped_slots(&self, start: Time, end: Time) -> Option<(i64, i64)> {
        if end <= start {
            return None;
        }
        let tau = self.slot_cfg.tau.secs();
        let lo = start.secs().div_euclid(tau).max(self.base);
        let hi = (end.secs() - 1)
            .div_euclid(tau)
            .min(self.base + self.m as i64 - 1);
        (lo <= hi).then_some((lo, hi))
    }

    /// Range add over leaf positions `[l, r)` (already wrapped).
    fn add_leaves(&mut self, l: usize, r: usize, v: i64) {
        self.add_rec(1, 0, self.m, l, r, v);
    }

    fn add_rec(&mut self, node: usize, nl: usize, nr: usize, l: usize, r: usize, v: i64) {
        if r <= nl || nr <= l {
            return;
        }
        if l <= nl && nr <= r {
            self.lazy[node] += v;
            self.max[node] += v;
            return;
        }
        let mid = (nl + nr) / 2;
        self.add_rec(2 * node, nl, mid, l, r, v);
        self.add_rec(2 * node + 1, mid, nr, l, r, v);
        self.max[node] = self.lazy[node] + self.max[2 * node].max(self.max[2 * node + 1]);
    }

    /// Maximum over the absolute slot range `[lo, hi)` (live slots only).
    fn range_max(&self, lo: i64, hi: i64) -> i64 {
        let pos = lo.rem_euclid(self.m as i64) as usize;
        let len = (hi - lo) as usize;
        if pos + len <= self.m {
            self.max_rec(1, 0, self.m, pos, pos + len, 0)
        } else {
            self.max_rec(1, 0, self.m, pos, self.m, 0)
                .max(self.max_rec(1, 0, self.m, 0, pos + len - self.m, 0))
        }
    }

    fn max_rec(&self, node: usize, nl: usize, nr: usize, l: usize, r: usize, acc: i64) -> i64 {
        if r <= nl || nr <= l {
            return i64::MIN;
        }
        if l <= nl && nr <= r {
            return self.max[node] + acc;
        }
        let mid = (nl + nr) / 2;
        let acc = acc + self.lazy[node];
        self.max_rec(2 * node, nl, mid, l, r, acc)
            .max(self.max_rec(2 * node + 1, mid, nr, l, r, acc))
    }

    /// The *largest absolute* slot in `[lo, hi)` (inclusive-exclusive, live)
    /// whose count exceeds `thresh`, or `None`.
    fn rightmost_above(&self, lo: i64, hi: i64, thresh: i64) -> Option<i64> {
        let pos = lo.rem_euclid(self.m as i64) as usize;
        let len = (hi - lo) as usize;
        if pos + len <= self.m {
            self.rightmost_rec(1, 0, self.m, pos, pos + len, thresh, 0)
                .map(|p| lo + (p - pos) as i64)
        } else {
            let wrap = pos + len - self.m;
            // The wrapped tail holds the *later* absolute slots — search it
            // first so the returned blocker is the rightmost in time.
            self.rightmost_rec(1, 0, self.m, 0, wrap, thresh, 0)
                .map(|p| hi - (wrap - p) as i64)
                .or_else(|| {
                    self.rightmost_rec(1, 0, self.m, pos, self.m, thresh, 0)
                        .map(|p| lo + (p - pos) as i64)
                })
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rightmost_rec(
        &self,
        node: usize,
        nl: usize,
        nr: usize,
        l: usize,
        r: usize,
        thresh: i64,
        acc: i64,
    ) -> Option<usize> {
        if r <= nl || nr <= l || self.max[node] + acc <= thresh {
            return None;
        }
        if nr - nl == 1 {
            return Some(nl);
        }
        let mid = (nl + nr) / 2;
        let acc = acc + self.lazy[node];
        self.rightmost_rec(2 * node + 1, mid, nr, l, r, thresh, acc)
            .or_else(|| self.rightmost_rec(2 * node, nl, mid, l, r, thresh, acc))
    }

    /// Value at leaf `pos`: the leaf's own adds plus every ancestor's lazy.
    fn point_value(&self, pos: usize) -> i64 {
        let mut acc = 0;
        let mut node = 1usize;
        let (mut nl, mut nr) = (0usize, self.m);
        while nr - nl > 1 {
            acc += self.lazy[node];
            let mid = (nl + nr) / 2;
            if pos < mid {
                node *= 2;
                nr = mid;
            } else {
                node = 2 * node + 1;
                nl = mid;
            }
        }
        self.max[node] + acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tau: i64, horizon: i64) -> SlotConfig {
        SlotConfig::new(Dur(tau), Dur(horizon))
    }

    /// Brute-force twin: per-slot covering counts over an explicit window.
    struct Naive {
        tau: i64,
        num_slots: usize,
        base: i64,
        live: Vec<(Time, Time, u32)>,
    }

    impl Naive {
        fn busy(&self, q: i64) -> i64 {
            if q < self.base || q >= self.base + self.num_slots as i64 {
                return 0;
            }
            let (s, e) = (q * self.tau, (q + 1) * self.tau);
            self.live
                .iter()
                .filter(|&&(rs, re, _)| rs.secs() <= s && re.secs() >= e)
                .map(|&(_, _, n)| n as i64)
                .sum()
        }
    }

    #[test]
    fn counts_match_brute_force_under_churn() {
        let sc = cfg(10, 100);
        let mut p = FreeProfile::new(sc, 8, Time::ZERO);
        let mut naive = Naive {
            tau: 10,
            num_slots: sc.num_slots,
            base: 0,
            live: Vec::new(),
        };
        // Deterministic mixed add/remove/advance churn.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0i64;
        for _ in 0..400 {
            match step() % 4 {
                0 | 1 => {
                    // Commits never extend past the horizon (the scheduler
                    // rejects those with HorizonExceeded before add is
                    // called), so keep the window inside the live range.
                    let window_end = (now.div_euclid(10) + 10) * 10;
                    let s = now + (step() as i64).rem_euclid((window_end - now).max(1));
                    let d = 1 + (step() as i64).rem_euclid((window_end - s).max(1));
                    let n = 1 + (step() % 3) as u32;
                    p.add(Time(s), Time(s + d), n);
                    naive.live.push((Time(s), Time(s + d), n));
                }
                2 => {
                    if !naive.live.is_empty() {
                        let i = (step() as usize) % naive.live.len();
                        let (s, e, n) = naive.live.swap_remove(i);
                        p.remove(s, e, n);
                    }
                }
                _ => {
                    now += (step() % 35) as i64;
                    p.advance_to(Time(now));
                    naive.base = now.div_euclid(10);
                    // Mirror the live-window clamp: contributions to expired
                    // slots are gone, but the naive twin recomputes from the
                    // full reservation list, so drop fully expired ones the
                    // same way release clamping would.
                }
            }
            for q in naive.base..naive.base + naive.num_slots as i64 {
                assert_eq!(p.busy_in_slot(SlotIdx(q)) as i64, naive.busy(q), "slot {q}");
            }
        }
    }

    #[test]
    fn inward_rounding_only_counts_fully_covered_slots() {
        let sc = cfg(10, 100);
        let mut p = FreeProfile::new(sc, 4, Time::ZERO);
        // [5, 25) fully covers slot 1 only.
        p.add(Time(5), Time(25), 1);
        assert_eq!(p.busy_in_slot(SlotIdx(0)), 0);
        assert_eq!(p.busy_in_slot(SlotIdx(1)), 1);
        assert_eq!(p.busy_in_slot(SlotIdx(2)), 0);
        // A sub-slot reservation covers nothing.
        p.add(Time(31), Time(39), 1);
        assert_eq!(p.busy_in_slot(SlotIdx(3)), 0);
        // Exact slot alignment covers exactly its slots.
        p.add(Time(40), Time(60), 2);
        assert_eq!(p.busy_in_slot(SlotIdx(4)), 2);
        assert_eq!(p.busy_in_slot(SlotIdx(5)), 2);
        assert_eq!(p.busy_in_slot(SlotIdx(6)), 0);
    }

    #[test]
    fn free_upper_bound_is_window_minimum() {
        let sc = cfg(10, 100);
        let mut p = FreeProfile::new(sc, 4, Time::ZERO);
        assert_eq!(p.free_upper_bound(Time(0), Time(50)), 4);
        p.add(Time(0), Time(30), 3);
        assert_eq!(p.free_upper_bound(Time(0), Time(10)), 1);
        assert_eq!(p.free_upper_bound(Time(25), Time(45)), 1); // intersects slot 2
        assert_eq!(p.free_upper_bound(Time(30), Time(50)), 4);
        p.add(Time(40), Time(50), 4);
        assert_eq!(p.free_upper_bound(Time(35), Time(35)), 4); // empty window: no info
        assert_eq!(p.free_upper_bound(Time(39), Time(41)), 0);
    }

    #[test]
    fn next_allowed_jumps_past_blockers_and_matches_linear_scan() {
        let sc = cfg(10, 200);
        let mut p = FreeProfile::new(sc, 2, Time::ZERO);
        p.add(Time(0), Time(90), 2); // both servers busy through slot 8
        p.add(Time(120), Time(160), 1); // one busy over slots 12..16
        for n in 1u32..=2 {
            for dur in [10i64, 30, 50] {
                for k_from in 0u64..4 {
                    let limit = 15u64;
                    // Linear oracle over the same bound.
                    let mut expect = None;
                    for k in k_from..limit {
                        let s = Time(k as i64 * 10);
                        if p.free_upper_bound(s, s + Dur(dur)) >= n {
                            expect = Some(k);
                            break;
                        }
                    }
                    let got = p.next_allowed(Time::ZERO, Dur(10), Dur(dur), n, k_from, limit);
                    assert_eq!(got, expect, "n={n} dur={dur} k_from={k_from}");
                }
            }
        }
    }

    #[test]
    fn rotation_reuses_leaves_for_new_edge_slots() {
        let sc = cfg(10, 40); // 4 slots, m = 4: rotation wraps quickly
        let mut p = FreeProfile::new(sc, 2, Time::ZERO);
        p.add(Time(0), Time(40), 2);
        assert_eq!(p.free_upper_bound(Time(0), Time(40)), 0);
        p.advance_to(Time(25)); // slots 0, 1 expire; 4, 5 open
        assert_eq!(p.busy_in_slot(SlotIdx(2)), 2);
        assert_eq!(p.busy_in_slot(SlotIdx(4)), 0);
        assert_eq!(p.busy_in_slot(SlotIdx(5)), 0);
        // Removing the original reservation clamps to the live window and
        // leaves everything at zero.
        p.remove(Time(0), Time(40), 2);
        for q in 2..6 {
            assert_eq!(p.busy_in_slot(SlotIdx(q)), 0, "slot {q}");
        }
        // A far advance resets wholesale.
        p.add(Time(30), Time(60), 1);
        p.advance_to(Time(500));
        for q in 50..54 {
            assert_eq!(p.busy_in_slot(SlotIdx(q)), 0, "slot {q}");
        }
    }

    #[test]
    fn snapshot_style_rebuild_is_leaf_identical() {
        let sc = cfg(10, 100);
        let mut live = FreeProfile::new(sc, 4, Time::ZERO);
        let mut committed: Vec<(Time, Time)> = Vec::new();
        for (s, d) in [(0i64, 45i64), (20, 30), (60, 80), (135, 20)] {
            live.add(Time(s), Time(s + d), 1);
            committed.push((Time(s), Time(s + d)));
        }
        live.advance_to(Time(57));
        live.remove(Time(20), Time(50), 1); // release after rotation
        committed.retain(|&(s, _)| s != Time(20));
        // Rebuild the way snapshot restore does: reset at `now`, re-add the
        // busy set.
        let mut rebuilt = FreeProfile::new(sc, 4, Time::ZERO);
        rebuilt.reset(Time(57));
        for &(s, e) in &committed {
            rebuilt.add(s, e, 1);
        }
        for q in 5..15 {
            assert_eq!(
                live.busy_in_slot(SlotIdx(q)),
                rebuilt.busy_in_slot(SlotIdx(q)),
                "slot {q}"
            );
        }
        live.check_against(committed.iter().copied());
    }
}
