//! Identifier newtypes shared across the crate.

use std::fmt;

/// Identifies one server (processor, VM, link-wavelength, ...) in the system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

/// Identifies one idle period. Ids are unique for the lifetime of a
/// scheduler and never reused, so a stale id can always be detected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeriodId(pub u64);

/// Identifies one accepted job (one committed co-allocation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

impl fmt::Debug for PeriodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idle{}", self.0)
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
