//! Property tests for the availability profile against a per-second
//! occupancy oracle.

use coalloc_batch::Profile;
use coalloc_core::prelude::{Dur, Time};
use proptest::prelude::*;

const SPAN: i64 = 300;
const CAP: u32 = 6;

fn brute_earliest_fit(usage: &[u32], after: i64, dur: i64, procs: u32) -> i64 {
    let mut s = after;
    'outer: loop {
        let mut t = s;
        while t < s + dur {
            let used = if t < SPAN { usage[t as usize] } else { 0 };
            if used + procs > CAP {
                s = t + 1;
                continue 'outer;
            }
            t += 1;
        }
        return s;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After a random sequence of (valid) reservations, `earliest_fit`
    /// agrees with a brute-force per-second search for arbitrary queries.
    #[test]
    fn earliest_fit_matches_brute_force(
        reservations in prop::collection::vec((0i64..SPAN, 1i64..40, 1u32..=CAP), 0..15),
        queries in prop::collection::vec((0i64..SPAN, 1i64..50, 1u32..=CAP), 1..10),
    ) {
        let mut p = Profile::new(CAP);
        let mut usage = vec![0u32; SPAN as usize];
        for (start, len, procs) in reservations {
            let end = (start + len).min(SPAN);
            if end <= start {
                continue;
            }
            // Only place it if it fits (mirrors real callers).
            let fits = (start..end).all(|t| usage[t as usize] + procs <= CAP);
            if fits {
                p.reserve(Time(start), Time(end), procs);
                for t in start..end {
                    usage[t as usize] += procs;
                }
            }
        }
        for (after, dur, procs) in queries {
            let got = p.earliest_fit(Time(after), Dur(dur), procs);
            let want = brute_earliest_fit(&usage, after, dur, procs);
            prop_assert_eq!(got, Time(want), "query after={} dur={} procs={}", after, dur, procs);
        }
    }

    /// Reserve + release is an identity on the profile's observable state.
    #[test]
    fn reserve_release_identity(
        windows in prop::collection::vec((0i64..SPAN, 1i64..40, 1u32..=CAP), 1..10),
        probes in prop::collection::vec(0i64..SPAN, 1..20),
    ) {
        let mut p = Profile::new(CAP);
        let mut placed = Vec::new();
        for (start, len, procs) in windows {
            let end = start + len;
            if p.earliest_fit(Time(start), Dur(len), procs) == Time(start) {
                p.reserve(Time(start), Time(end), procs);
                placed.push((start, end, procs));
            }
        }
        for &(start, end, procs) in placed.iter().rev() {
            p.release(Time(start), Time(end), procs);
        }
        for t in probes {
            prop_assert_eq!(p.free_at(Time(t)), CAP as i64);
        }
    }
}
