//! Cross-cutting properties of the batch baselines, driven by the synthetic
//! workload twins.

use coalloc_batch::{run_batch, BatchPolicy};
use coalloc_core::prelude::*;
use coalloc_sim::runner::RunResult;
use coalloc_workloads::{with_paper_reservations, WorkloadSpec};
use proptest::prelude::*;

/// Verify that a schedule never overcommits the machine and never starts a
/// job before its release time.
fn assert_valid_schedule(capacity: u32, result: &RunResult) {
    let mut deltas: Vec<(Time, i64)> = Vec::new();
    for o in &result.outcomes {
        if let Some(start) = o.start {
            assert!(
                start >= o.earliest,
                "{}: job started before release",
                result.label
            );
            deltas.push((start, o.servers as i64));
            deltas.push((start + o.duration, -(o.servers as i64)));
        }
    }
    // End events before start events at the same instant.
    deltas.sort_by_key(|&(t, d)| (t, d));
    let mut used = 0i64;
    for (t, d) in deltas {
        used += d;
        assert!(
            used <= capacity as i64,
            "{}: capacity exceeded at {t}: {used} > {capacity}",
            result.label
        );
        assert!(used >= 0);
    }
}

fn kth_slice(seed: u64) -> (u32, Vec<Request>) {
    let spec = WorkloadSpec::kth().scaled(0.01);
    let n = spec.servers;
    (n, spec.generate(seed))
}

#[test]
fn all_policies_produce_valid_schedules_on_kth() {
    let (n, reqs) = kth_slice(42);
    for policy in BatchPolicy::all() {
        let out = run_batch(n, policy, &reqs, policy.label());
        assert_valid_schedule(n, &out);
        assert_eq!(out.outcomes.len(), reqs.len());
        assert!(out.acceptance_rate() > 0.99, "{}", policy.label());
    }
}

#[test]
fn backfilling_beats_fcfs_on_mean_wait() {
    let (n, reqs) = kth_slice(7);
    let fcfs = run_batch(n, BatchPolicy::Fcfs, &reqs, "fcfs");
    let easy = run_batch(n, BatchPolicy::EasyBackfill, &reqs, "easy");
    let cons = run_batch(n, BatchPolicy::ConservativeBackfill, &reqs, "cons");
    let (wf, we, wc) = (
        fcfs.waiting_stats_hours().mean(),
        easy.waiting_stats_hours().mean(),
        cons.waiting_stats_hours().mean(),
    );
    assert!(we <= wf, "EASY {we} should beat FCFS {wf}");
    assert!(wc <= wf, "conservative {wc} should beat FCFS {wf}");
}

#[test]
fn head_of_queue_never_delayed_by_easy_relative_to_fcfs_makespan() {
    // EASY must not hurt overall makespan relative to FCFS on the same
    // stream (backfilling only uses idle capacity).
    let (n, reqs) = kth_slice(3);
    let fcfs = run_batch(n, BatchPolicy::Fcfs, &reqs, "fcfs");
    let easy = run_batch(n, BatchPolicy::EasyBackfill, &reqs, "easy");
    assert!(easy.makespan <= fcfs.makespan);
}

#[test]
fn advance_release_streams_stay_valid() {
    let (n, reqs) = kth_slice(11);
    let mixed = with_paper_reservations(&reqs, 0.5, 9);
    for policy in BatchPolicy::all() {
        let out = run_batch(n, policy, &mixed, policy.label());
        assert_valid_schedule(n, &out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small streams: every policy yields a valid schedule and FCFS
    /// preserves queue order (start times of same-release jobs are
    /// monotone in arrival order).
    #[test]
    fn random_streams_valid(raw in prop::collection::vec((0i64..500, 1i64..400, 1u32..8), 1..60)) {
        let mut t = 0;
        let reqs: Vec<Request> = raw
            .iter()
            .map(|&(dt, dur, procs)| {
                t += dt;
                Request::on_demand(Time(t), Dur(dur), procs)
            })
            .collect();
        for policy in BatchPolicy::all() {
            let out = run_batch(8, policy, &reqs, policy.label());
            assert_valid_schedule(8, &out);
            prop_assert_eq!(out.acceptance_rate(), 1.0);
        }
        // FCFS order property.
        let fcfs = run_batch(8, BatchPolicy::Fcfs, &reqs, "fcfs");
        let starts: Vec<Time> = fcfs.outcomes.iter().map(|o| o.start.unwrap()).collect();
        for w in starts.windows(2) {
            prop_assert!(w[0] <= w[1], "FCFS must start jobs in queue order");
        }
    }
}
