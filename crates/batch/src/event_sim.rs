//! Event-driven batch-scheduler simulation: FCFS and EASY backfilling.
//!
//! These are the scheduler family that produced the paper's traces ("all
//! three systems implement some variant of a batch scheduler where jobs are
//! placed into one or multiple queues waiting for resources to become
//! available"). Jobs are queued in arrival order; FCFS starts the queue head
//! whenever it fits; EASY additionally backfills later jobs that cannot
//! delay the head's earliest-start reservation (Lifka's algorithm).

use crate::policy::BatchPolicy;
use coalloc_core::prelude::{Request, Time};
use coalloc_sim::events::EventQueue;
use coalloc_sim::runner::{Outcome, RunResult};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
struct Waiting {
    idx: usize,
    procs: i64,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrival(usize),
    Completion { procs: i64 },
}

/// Simulate `requests` through an event-driven FCFS or EASY batch scheduler
/// on `capacity` processors. A request's *release time* is its earliest
/// start `s_r` (equal to `q_r` for on-demand jobs); jobs enter the queue in
/// release order. Requests wider than the machine are rejected.
pub fn run_event_batch(
    capacity: u32,
    policy: BatchPolicy,
    requests: &[Request],
    label: &str,
) -> RunResult {
    assert!(matches!(
        policy,
        BatchPolicy::Fcfs | BatchPolicy::EasyBackfill
    ));
    let n = capacity as i64;
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].earliest_start.max(requests[i].submit));
    for &i in &order {
        let r = &requests[i];
        events.push(r.earliest_start.max(r.submit), Ev::Arrival(i));
    }

    let mut free = n;
    let mut running: Vec<(Time, i64)> = Vec::new(); // (end, procs), kept sorted by end
    let mut queue: VecDeque<Waiting> = VecDeque::new();
    let mut starts: Vec<Option<Time>> = vec![None; requests.len()];
    let mut ops: u64 = 0;
    let mut makespan = Time::ZERO;

    while let Some((t, ev)) = events.pop() {
        match ev {
            Ev::Arrival(idx) => {
                let r = &requests[idx];
                if r.servers as i64 > n {
                    continue; // rejected: wider than the machine
                }
                queue.push_back(Waiting {
                    idx,
                    procs: r.servers as i64,
                });
            }
            Ev::Completion { procs } => {
                free += procs;
                // Remove one matching entry from the running set.
                if let Some(pos) = running.iter().position(|&(end, p)| end == t && p == procs) {
                    running.remove(pos);
                }
            }
        }
        // Coalesce simultaneous events before a scheduling pass.
        if events.peek_time() == Some(t) {
            continue;
        }
        schedule_pass(
            t, policy, &mut free, &mut running, &mut queue, &mut starts, &mut events, &mut ops,
            &mut makespan, requests,
        );
    }

    let outcomes: Vec<Outcome> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| Outcome {
            submit: r.submit,
            earliest: r.earliest_start.max(r.submit),
            duration: r.duration,
            servers: r.servers,
            start: starts[i],
            attempts: 1,
            ops: 0,
        })
        .collect();
    // Utilization: committed work over [first release, makespan).
    let origin = order
        .first()
        .map(|&i| requests[i].earliest_start.max(requests[i].submit))
        .unwrap_or(Time::ZERO);
    let span = (makespan - origin).secs().max(1) as f64;
    let busy: f64 = outcomes
        .iter()
        .filter(|o| o.accepted())
        .map(|o| o.duration.secs() as f64 * o.servers as f64)
        .sum();
    RunResult {
        label: label.to_string(),
        outcomes,
        utilization: busy / (span * capacity as f64),
        makespan,
        total_ops: ops,
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_pass(
    t: Time,
    policy: BatchPolicy,
    free: &mut i64,
    running: &mut Vec<(Time, i64)>,
    queue: &mut VecDeque<Waiting>,
    starts: &mut [Option<Time>],
    events: &mut EventQueue<Ev>,
    ops: &mut u64,
    makespan: &mut Time,
    requests: &[Request],
) {
    let mut start_job = |w: Waiting,
                         free: &mut i64,
                         running: &mut Vec<(Time, i64)>,
                         events: &mut EventQueue<Ev>,
                         makespan: &mut Time| {
        let end = t + requests[w.idx].duration;
        *free -= w.procs;
        debug_assert!(*free >= 0);
        starts[w.idx] = Some(t);
        let pos = running.partition_point(|&(e, _)| e <= end);
        running.insert(pos, (end, w.procs));
        events.push(end, Ev::Completion { procs: w.procs });
        *makespan = (*makespan).max(end);
    };

    // FCFS phase: start queue heads while they fit.
    while let Some(&head) = queue.front() {
        *ops += 1;
        if head.procs <= *free {
            queue.pop_front();
            start_job(head, free, running, events, makespan);
        } else {
            break;
        }
    }
    if policy == BatchPolicy::Fcfs || queue.is_empty() {
        return;
    }

    // EASY backfill phase: the blocked head gets a reservation at the
    // *shadow time*; later jobs may start now iff they fit in the free
    // nodes and either finish before the shadow time or use only the
    // `extra` nodes the head will not need.
    loop {
        let head = *queue.front().expect("non-empty");
        // Shadow time: earliest t' where free + completed-by-t' >= head.
        let mut acc = *free;
        let mut shadow = None;
        let mut freed_at_shadow = 0i64;
        for &(end, procs) in running.iter() {
            *ops += 1;
            acc += procs;
            if acc >= head.procs {
                shadow = Some(end);
                freed_at_shadow = acc;
                break;
            }
        }
        let Some(shadow) = shadow else {
            // Head can never run (should have been rejected on arrival).
            return;
        };
        let extra = freed_at_shadow - head.procs;
        // Find the first backfillable job after the head.
        let mut picked: Option<usize> = None;
        for (qi, w) in queue.iter().enumerate().skip(1) {
            *ops += 1;
            if w.procs <= *free {
                let ends_by_shadow = t + requests[w.idx].duration <= shadow;
                if ends_by_shadow || w.procs <= extra {
                    picked = Some(qi);
                    break;
                }
            }
        }
        match picked {
            Some(qi) => {
                let w = queue.remove(qi).expect("index in range");
                start_job(w, free, running, events, makespan);
                // Backfilling may have freed the way for nothing else, but
                // shadow/extra must be recomputed, so loop.
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_core::prelude::Dur;

    fn r(submit: i64, dur: i64, procs: u32) -> Request {
        Request::on_demand(Time(submit), Dur(dur), procs)
    }

    #[test]
    fn fcfs_runs_in_arrival_order() {
        // 4 procs; job0 takes all 4; job1 (2 procs) and job2 (2 procs) queue.
        let reqs = vec![r(0, 100, 4), r(1, 50, 2), r(2, 50, 2)];
        let out = run_event_batch(4, BatchPolicy::Fcfs, &reqs, "fcfs");
        assert_eq!(out.outcomes[0].start, Some(Time(0)));
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
        assert_eq!(out.outcomes[2].start, Some(Time(100)));
    }

    #[test]
    fn fcfs_head_blocks_smaller_jobs() {
        // job0 uses 3/4 procs; job1 needs 4 (blocked); job2 needs 1 and
        // would fit now, but FCFS does not let it pass job1.
        let reqs = vec![r(0, 100, 3), r(1, 100, 4), r(2, 10, 1)];
        let out = run_event_batch(4, BatchPolicy::Fcfs, &reqs, "fcfs");
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
        assert_eq!(out.outcomes[2].start, Some(Time(200)));
    }

    #[test]
    fn easy_backfills_short_job_without_delaying_head() {
        // Same scenario: EASY lets job2 (10s, 1 proc) run at t=1.. since it
        // completes before the shadow time (100).
        let reqs = vec![r(0, 100, 3), r(1, 100, 4), r(2, 10, 1)];
        let out = run_event_batch(4, BatchPolicy::EasyBackfill, &reqs, "easy");
        assert_eq!(out.outcomes[2].start, Some(Time(2)));
        // Head still starts at its shadow time.
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
    }

    #[test]
    fn easy_refuses_backfill_that_would_delay_head() {
        // job2 needs 60s > shadow window and all the head's nodes.
        let reqs = vec![r(0, 100, 3), r(1, 100, 4), r(2, 150, 1)];
        let out = run_event_batch(4, BatchPolicy::EasyBackfill, &reqs, "easy");
        // 1 proc <= extra? shadow=100, freed=3+1=4, extra=0 → no backfill;
        // job2 then waits behind the head until it finishes at t=200.
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
        assert_eq!(out.outcomes[2].start, Some(Time(200)));
    }

    #[test]
    fn easy_backfills_into_extra_nodes() {
        // Head needs 2 of 4; one proc is running until 100. free=1.
        // Actually: job0 (3 procs, 100s); job1 (2 procs) blocked (free=1);
        // shadow = 100, freed = 4, extra = 2. job2 (1 proc, long) fits in
        // free=1 <= extra=2 → backfills even though it outlives the shadow.
        let reqs = vec![r(0, 100, 3), r(1, 100, 2), r(2, 500, 1)];
        let out = run_event_batch(4, BatchPolicy::EasyBackfill, &reqs, "easy");
        assert_eq!(out.outcomes[2].start, Some(Time(2)));
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let reqs = vec![r(0, 10, 9)];
        let out = run_event_batch(4, BatchPolicy::EasyBackfill, &reqs, "easy");
        assert_eq!(out.outcomes[0].start, None);
        assert_eq!(out.acceptance_rate(), 0.0);
    }

    #[test]
    fn advance_release_time_respected() {
        let reqs = vec![Request::advance(Time(0), Time(50), Dur(10), 1)];
        let out = run_event_batch(4, BatchPolicy::Fcfs, &reqs, "fcfs");
        assert_eq!(out.outcomes[0].start, Some(Time(50)));
        assert_eq!(out.outcomes[0].waiting(), Some(Dur::ZERO));
    }

    #[test]
    fn utilization_positive_under_load() {
        let reqs: Vec<Request> = (0..50).map(|i| r(i * 10, 200, 2)).collect();
        let out = run_event_batch(4, BatchPolicy::EasyBackfill, &reqs, "easy");
        assert!(out.utilization > 0.5, "utilization {}", out.utilization);
        assert!(out.total_ops > 0);
    }
}
