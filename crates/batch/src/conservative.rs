//! Conservative backfilling: every job receives a reservation in the
//! availability profile the moment it arrives, at the earliest instant the
//! profile can host it; later jobs may fill earlier holes only when doing so
//! delays *no* previously reserved job — which the profile encodes by
//! construction.
//!
//! With the paper's modelling assumption that actual run time equals the
//! estimate (estimate accuracy is explicitly out of scope, Section 2), the
//! planned start is exact, so the whole simulation reduces to one
//! profile pass over the arrival-ordered request stream.

use crate::profile::Profile;
use coalloc_core::prelude::{Request, Time};
use coalloc_sim::runner::{Outcome, RunResult};

/// Simulate conservative backfilling on `capacity` processors.
pub fn run_conservative(capacity: u32, requests: &[Request], label: &str) -> RunResult {
    let mut profile = Profile::new(capacity);
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].earliest_start.max(requests[i].submit));
    let mut starts: Vec<Option<Time>> = vec![None; requests.len()];
    let mut makespan = Time::ZERO;
    for &i in &order {
        let r = &requests[i];
        if r.servers as i64 > profile.capacity() {
            continue;
        }
        let release = r.earliest_start.max(r.submit);
        let start = profile.earliest_fit(release, r.duration, r.servers);
        let end = start + r.duration;
        profile.reserve(start, end, r.servers);
        starts[i] = Some(start);
        makespan = makespan.max(end);
        // Bound memory on long traces: nothing before `release` can matter
        // for later arrivals (their release times are no earlier).
        profile.prune_before(release);
    }
    let outcomes: Vec<Outcome> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| Outcome {
            submit: r.submit,
            earliest: r.earliest_start.max(r.submit),
            duration: r.duration,
            servers: r.servers,
            start: starts[i],
            attempts: 1,
            ops: 0,
        })
        .collect();
    let origin = order
        .first()
        .map(|&i| requests[i].earliest_start.max(requests[i].submit))
        .unwrap_or(Time::ZERO);
    let span = (makespan - origin).secs().max(1) as f64;
    let busy: f64 = outcomes
        .iter()
        .filter(|o| o.accepted())
        .map(|o| o.duration.secs() as f64 * o.servers as f64)
        .sum();
    RunResult {
        label: label.to_string(),
        outcomes,
        utilization: busy / (span * capacity as f64),
        makespan,
        total_ops: profile.ops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_core::prelude::Dur;

    fn r(submit: i64, dur: i64, procs: u32) -> Request {
        Request::on_demand(Time(submit), Dur(dur), procs)
    }

    #[test]
    fn fills_holes_without_delaying_reservations() {
        // job0: 3/4 procs for 100. job1: 4 procs → reserved at 100.
        // job2 (1 proc, 50s) fits in the hole [2, 100) on the free proc.
        let reqs = vec![r(0, 100, 3), r(1, 100, 4), r(2, 50, 1)];
        let out = run_conservative(4, &reqs, "cons");
        assert_eq!(out.outcomes[0].start, Some(Time(0)));
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
        assert_eq!(out.outcomes[2].start, Some(Time(2)));
    }

    #[test]
    fn refuses_hole_that_would_delay_reservation() {
        // job2 is too long for the hole and would overlap job1's
        // reservation on every processor → placed after job1.
        let reqs = vec![r(0, 100, 3), r(1, 100, 4), r(2, 200, 1)];
        let out = run_conservative(4, &reqs, "cons");
        assert_eq!(out.outcomes[2].start, Some(Time(200)));
    }

    #[test]
    fn unlike_easy_it_protects_every_queued_job() {
        // Queue: head job1 (2 procs @ shadow), job2 (2 procs) reserved next;
        // a later 1-proc long job must not delay *job2* either.
        let reqs = vec![r(0, 100, 4), r(1, 50, 2), r(2, 50, 2), r(3, 500, 3)];
        let out = run_conservative(4, &reqs, "cons");
        assert_eq!(out.outcomes[1].start, Some(Time(100)));
        assert_eq!(out.outcomes[2].start, Some(Time(100)));
        // job3 needs 3 procs: at 150 both 2-proc jobs end → free 4.
        assert_eq!(out.outcomes[3].start, Some(Time(150)));
    }

    #[test]
    fn oversized_rejected() {
        let out = run_conservative(4, &[r(0, 10, 5)], "cons");
        assert_eq!(out.outcomes[0].start, None);
    }

    #[test]
    fn respects_release_times() {
        let reqs = vec![Request::advance(Time(0), Time(30), Dur(10), 2)];
        let out = run_conservative(4, &reqs, "cons");
        assert_eq!(out.outcomes[0].start, Some(Time(30)));
    }
}
