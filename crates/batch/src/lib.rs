//! # coalloc-batch
//!
//! Baseline batch schedulers for the comparative evaluation of Section 5.
//! The paper compares its online co-allocation algorithm against "the batch
//! scheduling algorithms used for the workloads" — EASY-style backfilling
//! systems. This crate simulates that family over the same request streams:
//!
//! * [`BatchPolicy::Fcfs`] — pure first-come-first-serve;
//! * [`BatchPolicy::EasyBackfill`] — aggressive (EASY) backfilling, the
//!   discipline the traced systems ran;
//! * [`BatchPolicy::ConservativeBackfill`] — profile-based conservative
//!   backfilling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conservative;
pub mod event_sim;
pub mod policy;
pub mod profile;

pub use conservative::run_conservative;
pub use event_sim::run_event_batch;
pub use policy::BatchPolicy;
pub use profile::Profile;

use coalloc_core::prelude::Request;
use coalloc_sim::runner::RunResult;

/// Simulate `requests` under the given batch policy on `capacity`
/// processors. Release times honour advance reservations (`s_r`).
pub fn run_batch(
    capacity: u32,
    policy: BatchPolicy,
    requests: &[Request],
    label: &str,
) -> RunResult {
    match policy {
        BatchPolicy::Fcfs | BatchPolicy::EasyBackfill => {
            run_event_batch(capacity, policy, requests, label)
        }
        BatchPolicy::ConservativeBackfill => run_conservative(capacity, requests, label),
    }
}
