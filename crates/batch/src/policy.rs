//! Batch-scheduler policy selection.

/// Which batch-scheduling discipline to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Pure first-come-first-serve: the queue head blocks everything behind
    /// it. "Pure FCFS policies lead to high fragmentation of resources, low
    /// utilization and limited scheduling flexibility" (Section 1).
    Fcfs,
    /// EASY (aggressive) backfilling: "allow small jobs to leap ahead in the
    /// queue as long as they don't delay the job at the head of the queue"
    /// (Section 5.1). The default, since the paper's trace systems ran this
    /// family.
    #[default]
    EasyBackfill,
    /// Conservative backfilling: a backfilled job may not delay *any*
    /// queued job.
    ConservativeBackfill,
}

impl BatchPolicy {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            BatchPolicy::Fcfs => "fcfs",
            BatchPolicy::EasyBackfill => "easy",
            BatchPolicy::ConservativeBackfill => "conservative",
        }
    }

    /// All policies, for sweeps.
    pub fn all() -> [BatchPolicy; 3] {
        [
            BatchPolicy::Fcfs,
            BatchPolicy::EasyBackfill,
            BatchPolicy::ConservativeBackfill,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            BatchPolicy::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn default_is_easy() {
        assert_eq!(BatchPolicy::default(), BatchPolicy::EasyBackfill);
    }
}
