//! Processor-availability profile: a step function over future time giving
//! the number of free processors, with earliest-fit queries and range
//! reservations. This is the planning structure behind conservative
//! backfilling (every queued job holds a reservation in the profile) and the
//! profile-based FCFS baseline.

use coalloc_core::prelude::{Dur, Time};
use std::collections::BTreeMap;

/// Far-past sentinel used as the first step key.
const ORIGIN: Time = Time(i64::MIN / 4);

/// A step function `t -> free processors`.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Value holds from its key (inclusive) until the next key (exclusive).
    steps: BTreeMap<Time, i64>,
    capacity: i64,
    /// Step-scan operations (for complexity accounting).
    ops: u64,
}

impl Profile {
    /// A profile with `capacity` processors free forever.
    pub fn new(capacity: u32) -> Profile {
        let mut steps = BTreeMap::new();
        steps.insert(ORIGIN, capacity as i64);
        Profile {
            steps,
            capacity: capacity as i64,
            ops: 0,
        }
    }

    /// Total processors.
    pub fn capacity(&self) -> i64 {
        self.capacity
    }

    /// Step-scan operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Free processors at instant `t`.
    pub fn free_at(&self, t: Time) -> i64 {
        *self
            .steps
            .range(..=t)
            .next_back()
            .expect("origin step always present")
            .1
    }

    /// Earliest start `s >= after` such that at least `procs` processors are
    /// free throughout `[s, s + dur)`.
    ///
    /// Scans step boundaries; on a violation at boundary `k`, restarts from
    /// the first boundary after `k` with enough free processors, so the scan
    /// advances monotonically.
    pub fn earliest_fit(&mut self, after: Time, dur: Dur, procs: u32) -> Time {
        let procs = procs as i64;
        assert!(procs <= self.capacity, "request exceeds capacity");
        let mut s = after;
        'outer: loop {
            // Check free capacity over [s, s+dur).
            let end = s + dur;
            self.ops += 1;
            if self.free_at(s) < procs {
                // Jump to the next boundary with enough capacity.
                for (&k, &f) in self.steps.range((
                    std::ops::Bound::Excluded(s),
                    std::ops::Bound::Unbounded,
                )) {
                    self.ops += 1;
                    if f >= procs {
                        s = k;
                        continue 'outer;
                    }
                }
                unreachable!("profile tail always has full capacity");
            }
            for (&k, &f) in self.steps.range((
                std::ops::Bound::Excluded(s),
                std::ops::Bound::Excluded(end),
            )) {
                self.ops += 1;
                if f < procs {
                    // Violation at k: restart after k.
                    let mut next = None;
                    for (&k2, &f2) in self.steps.range((
                        std::ops::Bound::Excluded(k),
                        std::ops::Bound::Unbounded,
                    )) {
                        self.ops += 1;
                        if f2 >= procs {
                            next = Some(k2);
                            break;
                        }
                    }
                    s = next.expect("profile tail always has full capacity");
                    continue 'outer;
                }
            }
            return s;
        }
    }

    /// Subtract `procs` processors over `[start, end)`. Panics if that would
    /// drive any step negative (callers must only reserve what
    /// [`Self::earliest_fit`] granted).
    pub fn reserve(&mut self, start: Time, end: Time, procs: u32) {
        let procs = procs as i64;
        assert!(start < end, "empty reservation");
        // Ensure boundary keys exist.
        for t in [start, end] {
            let v = self.free_at(t);
            self.steps.entry(t).or_insert(v);
            self.ops += 1;
        }
        for (&k, v) in self.steps.range_mut(start..end) {
            self.ops += 1;
            *v -= procs;
            assert!(*v >= 0, "profile overcommitted at {k:?}");
        }
    }

    /// Add `procs` processors back over `[start, end)` (cancellation).
    pub fn release(&mut self, start: Time, end: Time, procs: u32) {
        let procs = procs as i64;
        for t in [start, end] {
            let v = self.free_at(t);
            self.steps.entry(t).or_insert(v);
        }
        for (_, v) in self.steps.range_mut(start..end) {
            *v += procs;
            assert!(*v <= self.capacity, "released more than reserved");
        }
    }

    /// Drop step boundaries strictly before `t` (the value at `t` is
    /// preserved via the origin step). Keeps long replays memory-bounded.
    pub fn prune_before(&mut self, t: Time) {
        if t <= ORIGIN {
            return;
        }
        let current = self.free_at(t);
        let dead: Vec<Time> = self
            .steps
            .range(..t)
            .map(|(&k, _)| k)
            .filter(|&k| k != ORIGIN)
            .collect();
        for k in dead {
            self.steps.remove(&k);
        }
        self.steps.insert(ORIGIN, current);
        // Merge: if the next step equals the origin value, it is redundant
        // but harmless; leave as-is for simplicity.
    }

    /// Number of step boundaries (diagnostics).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_profile_is_flat() {
        let mut p = Profile::new(8);
        assert_eq!(p.free_at(Time(0)), 8);
        assert_eq!(p.free_at(Time(1 << 40)), 8);
        assert_eq!(p.earliest_fit(Time(5), Dur(100), 8), Time(5));
    }

    #[test]
    fn reserve_carves_capacity() {
        let mut p = Profile::new(8);
        p.reserve(Time(10), Time(20), 5);
        assert_eq!(p.free_at(Time(9)), 8);
        assert_eq!(p.free_at(Time(10)), 3);
        assert_eq!(p.free_at(Time(19)), 3);
        assert_eq!(p.free_at(Time(20)), 8);
    }

    #[test]
    fn earliest_fit_skips_congestion() {
        let mut p = Profile::new(8);
        p.reserve(Time(10), Time(20), 6);
        // 4 procs don't fit while [10,20) is congested → next chance is 20.
        assert_eq!(p.earliest_fit(Time(0), Dur(15), 4), Time(20));
        assert_eq!(p.earliest_fit(Time(5), Dur(15), 4), Time(20));
        // A window ending before the congestion fits immediately.
        assert_eq!(p.earliest_fit(Time(0), Dur(10), 4), Time::ZERO);
        // 2 procs fit inside the congested window.
        assert_eq!(p.earliest_fit(Time(5), Dur(10), 2), Time(5));
    }

    #[test]
    fn earliest_fit_spans_multiple_gaps() {
        let mut p = Profile::new(4);
        p.reserve(Time(0), Time(10), 4);
        p.reserve(Time(15), Time(30), 3);
        // 2 procs for 10s: [10,15) too short, [15,30) only 1 free → 30.
        assert_eq!(p.earliest_fit(Time(0), Dur(10), 2), Time(30));
        // 1 proc for 5s fits at 10.
        assert_eq!(p.earliest_fit(Time(0), Dur(5), 1), Time(10));
    }

    #[test]
    fn fit_starting_mid_congestion() {
        let mut p = Profile::new(4);
        p.reserve(Time(0), Time(100), 4);
        assert_eq!(p.earliest_fit(Time(50), Dur(10), 1), Time(100));
    }

    #[test]
    fn release_restores() {
        let mut p = Profile::new(4);
        p.reserve(Time(10), Time(30), 4);
        p.release(Time(10), Time(30), 4);
        assert_eq!(p.earliest_fit(Time(0), Dur(50), 4), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn overcommit_panics() {
        let mut p = Profile::new(4);
        p.reserve(Time(0), Time(10), 3);
        p.reserve(Time(5), Time(15), 3);
    }

    #[test]
    fn prune_keeps_current_value() {
        let mut p = Profile::new(8);
        p.reserve(Time(0), Time(10), 2);
        p.reserve(Time(5), Time(50), 3);
        let before = p.free_at(Time(30));
        p.prune_before(Time(30));
        assert_eq!(p.free_at(Time(30)), before);
        assert_eq!(p.free_at(Time(60)), 8);
        assert!(p.num_steps() <= 3);
    }

    #[test]
    fn ops_counter_increases() {
        let mut p = Profile::new(8);
        let before = p.ops();
        p.reserve(Time(0), Time(10), 2);
        let _ = p.earliest_fit(Time(0), Dur(5), 8);
        assert!(p.ops() > before);
    }
}
