//! Cross-crate integration tests: the full paper pipeline (workload twin →
//! online scheduler vs batch baseline → metrics) plus the application
//! substrates, exercised through the umbrella crate's public API only.

use coalloc::batch::{run_batch, BatchPolicy};
use coalloc::prelude::*;

fn paper_cfg() -> SchedulerConfig {
    SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .build()
}

/// The paper's headline comparison, end to end: the KTH twin replayed
/// through the online co-allocator and the EASY batch baseline. The *shape*
/// assertions mirror Section 5.1's findings.
#[test]
fn kth_online_vs_batch_shape() {
    let spec = WorkloadSpec::kth().scaled(0.02);
    let reqs = spec.generate(7);
    let mut sched = CoAllocScheduler::new(spec.servers, paper_cfg());
    let online = run_online(&mut sched, &reqs, "online");
    let batch = run_batch(spec.servers, BatchPolicy::EasyBackfill, &reqs, "batch");

    // Everyone gets scheduled eventually in both systems (or nearly so —
    // the online system may reject after R_max attempts).
    assert!(online.acceptance_rate() > 0.95);
    assert_eq!(batch.acceptance_rate(), 1.0);

    // Tail-length gap: the batch scheduler's worst waits far exceed the
    // online scheduler's, which is bounded by R_max * Delta_t = 36 h.
    assert!(
        online.max_waiting_hours() <= 36.01,
        "online tail {} must be bounded by R_max*Delta_t",
        online.max_waiting_hours()
    );

    // Utilization is meaningful on both.
    assert!(online.utilization > 0.2 && online.utilization <= 1.0);
    assert!(batch.utilization > 0.2 && batch.utilization <= 1.0);

    // The online scheduler reports per-request op counts (Figure 7b data).
    assert!(online.mean_ops_per_request() > 0.0);
}

/// Small jobs are penalized far more by the batch scheduler than by the
/// online algorithm (Figure 3's headline: "an order of magnitude or more").
#[test]
fn small_jobs_penalized_more_under_batch() {
    let spec = WorkloadSpec::kth().scaled(0.02);
    let reqs = spec.generate(3);
    let mut sched = CoAllocScheduler::new(spec.servers, paper_cfg());
    let online = run_online(&mut sched, &reqs, "online");
    let batch = run_batch(spec.servers, BatchPolicy::EasyBackfill, &reqs, "batch");
    let po = online.penalty_by_duration_hours();
    let pb = batch.penalty_by_duration_hours();
    // Mean penalty of <=1h jobs.
    let o = po.group(1).map(|s| s.mean()).unwrap_or(0.0);
    let b = pb.group(1).map(|s| s.mean()).unwrap_or(0.0);
    assert!(
        b > o,
        "batch must penalize small jobs more: batch {b:.2} vs online {o:.2}"
    );
}

/// Advance reservations increase mean waiting monotonically-ish in rho
/// (Figure 7a: "the waiting time increases as rho increases").
#[test]
fn waiting_grows_with_reservation_fraction() {
    let spec = WorkloadSpec::kth().scaled(0.01);
    let base = spec.generate(11);
    let mut waits = Vec::new();
    for rho in [0.0, 0.5, 1.0] {
        let reqs = with_paper_reservations(&base, rho, 5);
        let mut sched = CoAllocScheduler::new(spec.servers, paper_cfg());
        let run = run_online(&mut sched, &reqs, "online");
        // The paper's Figure 7(a) basis: waiting measured from submission,
        // which includes the requested advance offset.
        waits.push(run.waiting_from_submit_stats_hours().mean());
    }
    assert!(
        waits[2] > waits[0],
        "rho=1 wait {} should exceed rho=0 wait {}",
        waits[2],
        waits[0]
    );
}

/// The naive scan and the slotted trees agree on a full workload replay
/// (same grants, rejections, and start times) under the order-independent
/// policy — the strongest cross-implementation check.
#[test]
fn naive_and_tree_agree_on_workload() {
    let spec = WorkloadSpec::ctc().scaled(0.005);
    let reqs = spec.generate(13);
    let cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(72))
        .delta_t(Dur::from_mins(15))
        .policy(SelectionPolicy::ByServerId)
        .build();
    let mut tree = CoAllocScheduler::new(spec.servers, cfg);
    let mut naive = NaiveScheduler::new(spec.servers, cfg);
    let a = run_online(&mut tree, &reqs, "tree");
    let b = run_naive(&mut naive, &reqs, "naive");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.start, y.start, "divergence on {:?}", x.submit);
        assert_eq!(x.attempts, y.attempts);
    }
    tree.check_consistency();
}

/// The multi-site protocol composes with the workload generator: split one
/// twin across sites and co-allocate cross-site slices.
#[test]
fn multisite_runs_workload_slices() {
    use std::time::Duration;
    let cfg = paper_cfg();
    let sites: Vec<SiteHandle> = (0..3).map(|i| SiteHandle::spawn(SiteId(i), 32, cfg)).collect();
    let mut coord = Coordinator::new(
        &sites,
        CoordinatorConfig {
            delta_t: Dur::from_mins(15),
            r_max: 48,
            rpc_timeout: Duration::from_secs(5),
            hold_ttl: Duration::from_secs(30),
            ..CoordinatorConfig::default()
        },
    );
    let mut granted = 0;
    for k in 0..20u32 {
        let req = MultiRequest {
            parts: [
                (SiteId(0), 4 + k % 8),
                (SiteId(1), 2 + k % 4),
                (SiteId(2), 1 + k % 16),
            ]
            .into_iter()
            .collect(),
            earliest_start: Time::from_hours((k % 6) as i64),
            duration: Dur::from_hours(2),
        };
        if coord.co_allocate(&req).is_ok() {
            granted += 1;
        }
    }
    assert!(granted >= 15, "most cross-site requests fit: {granted}");
    for s in sites {
        s.shutdown(); // runs each site's consistency check
    }
}

/// The PCE application composes with everything else: wavelengths on a ring
/// under contention behave like co-allocated servers.
#[test]
fn pce_blocking_probability_decreases_with_wavelengths() {
    let mut blocked = Vec::new();
    for w in [1u32, 2, 4] {
        let mut pce = Pce::new(
            Network::ring(8, w),
            paper_cfg(),
            PceConfig {
                k_paths: 2,
                wavelength_conversion: false,
                delta_t: Dur::from_mins(15),
                r_max: 4,
            },
        );
        let mut b = 0;
        for i in 0..24u32 {
            let req = ConnectionRequest {
                src: NodeId(i % 8),
                dst: NodeId((i + 3) % 8),
                earliest_start: Time::ZERO,
                duration: Dur::from_hours(4),
                wavelengths: (Wavelength(0), Wavelength(w - 1)),
            };
            if pce.connect(&req).is_err() {
                b += 1;
            }
        }
        blocked.push(b);
    }
    assert!(
        blocked[0] >= blocked[1] && blocked[1] >= blocked[2],
        "more wavelengths, less blocking: {blocked:?}"
    );
}

/// SWF parsing feeds the same pipeline as the twins.
#[test]
fn swf_roundtrip_through_scheduler() {
    let swf = "\
; synthetic mini trace
1 0    -1 3600 4 -1 -1 4 3600 -1 1 1 1 -1 1 -1 -1 -1
2 60   -1 1800 2 -1 -1 2 1800 -1 1 1 1 -1 1 -1 -1 -1
3 120  -1 7200 8 -1 -1 8 7200 -1 1 1 1 -1 1 -1 -1 -1
";
    let jobs = coalloc::workloads::parse_swf(swf).unwrap();
    let reqs = coalloc::workloads::swf_to_requests(&jobs);
    assert_eq!(reqs.len(), 3);
    let mut sched = CoAllocScheduler::new(8, paper_cfg());
    let run = run_online(&mut sched, &reqs, "swf");
    assert_eq!(run.acceptance_rate(), 1.0);
}

/// Utilization accounting agrees between the scheduler's commitments and
/// the run-result metric.
#[test]
fn utilization_is_consistent() {
    let spec = WorkloadSpec::kth().scaled(0.005);
    let reqs = spec.generate(23);
    let mut sched = CoAllocScheduler::new(spec.servers, paper_cfg());
    let run = run_online(&mut sched, &reqs, "online");
    let direct = sched.utilization(run.makespan);
    assert!((run.utilization - direct).abs() < 1e-9);
}
