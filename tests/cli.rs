//! End-to-end tests of the `coallocd` binary: the stdin/stdout protocol
//! and the `serve` TCP mode (same interpreter, byte-identical replies —
//! see `docs/PROTOCOL.md`).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn drive(script: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_coallocd"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coallocd");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    String::from_utf8(out.stdout)
        .expect("utf8")
        .lines()
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn full_session_over_the_wire() {
    let lines = drive(
        "init 4 900 86400 900\n\
         submit 0 0 3600 2\n\
         submit 0 7200 1800 4\n\
         query 3600 5400\n\
         advance 1800\n\
         stats\n\
         release 0\n\
         release 0\n\
         exit\n",
    );
    assert_eq!(lines[0], "ok 4 servers");
    assert!(lines[1].starts_with("granted job=0 start=0 end=3600"));
    assert!(lines[2].starts_with("granted job=1 start=7200"));
    assert!(lines[3].starts_with("free 4"), "{}", lines[3]);
    assert!(lines.iter().any(|l| l.starts_with("ok now=1800")));
    assert!(lines.iter().any(|l| l.contains("horizon_end=")));
    // First release succeeds, second reports unknown job.
    let releases: Vec<&String> = lines
        .iter()
        .filter(|l| l.as_str() == "ok" || l.starts_with("error unknown job"))
        .collect();
    assert!(releases.len() >= 2, "{lines:?}");
}

/// `coallocd serve` speaks the same protocol over TCP: spawn the real
/// binary on an ephemeral port, script it through a socket, and check the
/// reply stream matches what the same script produces on stdin.
#[test]
fn serve_mode_matches_stdin_session() {
    let script = "init 4 900 86400 900\n\
                  submit 0 0 3600 2\n\
                  query 0 3600\n\
                  stats\n\
                  release 0\n\
                  exit\n";
    let expected = drive(script);

    let mut child = Command::new(env!("CARGO_BIN_EXE_coallocd"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coallocd serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
    sock.write_all(script.as_bytes()).expect("send script");
    sock.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut over_tcp = String::new();
    std::io::Read::read_to_string(&mut BufReader::new(sock), &mut over_tcp).expect("read replies");
    let got: Vec<String> = over_tcp.lines().map(|l| l.to_string()).collect();
    assert_eq!(got, expected, "TCP replies must match the stdin session");

    // Closing stdin is the shutdown signal; the server must drain and exit 0.
    drop(child.stdin.take());
    let status = child.wait().expect("wait");
    assert!(status.success());
}

/// `serve --admin-addr` prints a second banner line with the resolved
/// admin address, and the admin plane answers a real HTTP scrape while
/// the command port serves the protocol.
#[test]
fn serve_mode_admin_banner_and_scrape() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_coallocd"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--admin-addr",
            "127.0.0.1:0",
            "--slow-threshold-ms",
            "250",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coallocd serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    assert!(banner.starts_with("listening on "), "{banner}");
    let mut admin_banner = String::new();
    stdout.read_line(&mut admin_banner).expect("read admin banner");
    let admin = admin_banner
        .trim()
        .strip_prefix("admin on ")
        .unwrap_or_else(|| panic!("unexpected admin banner: {admin_banner}"))
        .to_string();

    let mut sock = std::net::TcpStream::connect(&admin).expect("connect admin");
    sock.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    std::io::Read::read_to_string(&mut BufReader::new(sock), &mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.ends_with("ok\n"), "{response}");

    drop(child.stdin.take());
    let status = child.wait().expect("wait");
    assert!(status.success());
}

#[test]
fn snapshot_survives_process_restart() {
    let path = std::env::temp_dir().join("coallocd-e2e-snap.txt");
    let p = path.to_str().unwrap();
    let first = drive(&format!(
        "init 2 10 200 10\nsubmit 0 0 80 2\nsnapshot {p}\nexit\n"
    ));
    assert!(first[1].starts_with("granted job=0"));
    // A brand-new process restores the schedule and sees the commitment.
    let second = drive(&format!("load {p}\nquery 0 80\nsubmit 0 0 40 1\nexit\n"));
    assert_eq!(second[0], "ok 2 servers restored");
    assert!(second[1].starts_with("free 0"), "{}", second[1]);
    assert!(second[2].contains("start=80"), "{}", second[2]);
    let _ = std::fs::remove_file(path);
}
