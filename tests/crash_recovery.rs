//! Chaos test for the write-ahead log (ISSUE 6 acceptance): `coallocd
//! serve --wal-dir` survives `kill -9` with **zero lost acknowledged
//! grants** and no resurrected unacknowledged ones.
//!
//! The harness drives the *real* binary over TCP while mirroring every
//! acknowledged command into an in-process twin [`Session`] (asserting the
//! replies match byte-for-byte as it goes — the twin IS the uncrashed
//! reference). At a random point it sends a small batch of commands
//! *without reading their replies* (the in-doubt window) and SIGKILLs the
//! process. The restarted server's recovered state must equal the twin
//! after applying some *prefix* of the in-doubt batch: anything less lost
//! an acknowledged command, anything else invented state. 20 random kill
//! points, fixed seed (`COALLOC_CHAOS_SEED` overrides).

use coalloc::net::{Client, Session};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Deterministic traffic source (PCG-style LCG; no external deps).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_daemon(wal_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_coallocd"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            // Small enough that the 20 iterations exercise snapshot installs
            // and segment truncation, not just tail replay.
            "--wal-snapshot-every",
            "32",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn coallocd serve --wal-dir");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("no banner — recovery refused? got: {banner:?}"))
        .to_string();
    Daemon { child, addr }
}

impl Daemon {
    /// The crash under test: SIGKILL, no drain, no fsync, no goodbye.
    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
    /// Graceful shutdown (close stdin, wait for a clean exit).
    fn graceful(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("wait for coallocd");
        assert!(status.success(), "graceful shutdown must exit 0");
    }
}

fn connect(d: &Daemon) -> Client {
    let mut c = Client::connect(d.addr.as_str()).expect("connect to coallocd");
    c.set_timeout(Duration::from_secs(10)).unwrap();
    c
}

/// Ask the server for its canonical state (after a `check`).
fn server_state(c: &mut Client, snap_path: &str) -> String {
    assert_eq!(c.roundtrip("check").unwrap(), "ok", "recovered state is inconsistent");
    let r = c.roundtrip(&format!("snapshot {snap_path}")).unwrap();
    assert!(r.starts_with("ok wrote"), "{r}");
    std::fs::read_to_string(snap_path).expect("read server snapshot")
}

fn twin_reply(twin: &mut Session, cmd: &str) -> String {
    match twin.exec(cmd) {
        Ok(r) => r,
        Err(e) => format!("error: {e}"),
    }
}

/// One random single-line command. Multi-line replies (query/help/metrics)
/// are excluded so `roundtrip` framing stays one-line-per-command.
fn gen_cmd(rng: &mut Lcg, now: i64, live: &[u64]) -> String {
    match rng.below(10) {
        0..=5 => {
            let s = now + (rng.below(60) as i64) * 10;
            let l = 10 + (rng.below(6) as i64) * 10;
            let n = 1 + rng.below(5);
            format!("submit 0 {s} {l} {n}")
        }
        6 | 7 => {
            let job = if live.is_empty() || rng.below(4) == 0 {
                rng.below(50) // often unknown: error replies must match too
            } else {
                live[rng.below(live.len() as u64) as usize]
            };
            format!("release {job}")
        }
        8 => format!("advance {}", now + 10 * (1 + rng.below(3) as i64)),
        _ => "check".to_string(),
    }
}

/// Rebuild the trackers (clock, live job ids) from a canonical snapshot.
fn track_from_snapshot(state: &str, now: &mut i64, live: &mut Vec<u64>) {
    live.clear();
    for line in state.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        match f.as_slice() {
            ["clock", _origin, n] => *now = n.parse().unwrap(),
            ["res", job, ..] => {
                let j: u64 = job.parse().unwrap();
                if !live.contains(&j) {
                    live.push(j);
                }
            }
            _ => {}
        }
    }
}

#[test]
fn kill9_loses_no_acknowledged_grants() {
    let seed: u64 = std::env::var("COALLOC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0A1_10C8);
    let mut rng = Lcg(seed);
    let dir: PathBuf = std::env::temp_dir().join(format!("coalloc-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snap_file = std::env::temp_dir().join(format!("coalloc-chaos-snap-{}.txt", std::process::id()));
    let snap_path = snap_file.to_str().unwrap().to_string();

    let mut twin = Session::new(1);
    let mut now: i64 = 0;
    let mut live: Vec<u64> = Vec::new();
    let mut in_doubt: Vec<String> = Vec::new();

    const KILLS: usize = 20;
    for iteration in 0..=KILLS {
        let daemon = spawn_daemon(&dir);
        let mut client = connect(&daemon);

        if iteration == 0 {
            let init = "init 8 10 2000 10";
            assert_eq!(client.roundtrip(init).unwrap(), twin_reply(&mut twin, init));
        } else {
            // === Verify the recovery ===
            // The recovered state must equal the twin after some prefix of
            // the in-doubt batch: prefix semantics because the scheduler
            // thread logs in execution order, so the durable commands are
            // exactly the first k of the batch for some k.
            let recovered = server_state(&mut client, &snap_path);
            let mut candidates = vec![twin.snapshot_text().unwrap()];
            let mut matched = candidates[0] == recovered;
            let mut prefix = 0;
            for (k, cmd) in in_doubt.clone().iter().enumerate() {
                let _ = twin_reply(&mut twin, cmd);
                let snap = twin.snapshot_text().unwrap();
                if !matched && snap == recovered {
                    matched = true;
                    prefix = k + 1;
                }
                candidates.push(snap);
            }
            assert!(
                matched,
                "iteration {iteration} (seed {seed:#x}): recovered state matches no prefix \
                 of the {} in-doubt commands — an acknowledged command was lost or an \
                 unacknowledged one was invented.\nin-doubt: {:?}\nrecovered:\n{}\n\
                 candidate k=0 (no in-doubt applied):\n{}\ncandidate k=max:\n{}",
                in_doubt.len(),
                in_doubt,
                recovered,
                candidates[0],
                candidates[candidates.len() - 1]
            );
            let _ = prefix; // which prefix survived is informational only
            // Re-sync the twin to exactly the recovered state and trackers.
            twin.restore_plain(&recovered).unwrap();
            track_from_snapshot(&recovered, &mut now, &mut live);
        }

        if iteration == KILLS {
            // === Final pass: probe decisions, then drain-then-restart ===
            for _ in 0..10 {
                let cmd = gen_cmd(&mut rng, now, &live);
                let got = client.roundtrip(&cmd).unwrap();
                assert_eq!(got, twin_reply(&mut twin, cmd.as_str()), "final probe {cmd:?}");
            }
            let before_drain = server_state(&mut client, &snap_path);
            drop(client);
            daemon.graceful();
            // Graceful drain fsynced everything: a restart is lossless.
            let daemon = spawn_daemon(&dir);
            let mut client = connect(&daemon);
            let after = server_state(&mut client, &snap_path);
            assert_eq!(after, before_drain, "drain-then-restart must be lossless");
            drop(client);
            daemon.graceful();
            break;
        }

        // === Acknowledged traffic, mirrored into the twin ===
        let ops = 5 + rng.below(25);
        for _ in 0..ops {
            let cmd = gen_cmd(&mut rng, now, &live);
            let got = client.roundtrip(&cmd).unwrap();
            let want = twin_reply(&mut twin, &cmd);
            if got != want {
                let server = server_state(&mut client, &snap_path);
                panic!(
                    "iteration {iteration}: live divergence on {cmd:?} (seed {seed:#x})\n  \
                     server: {got}\n  twin:   {want}\nserver state:\n{server}\ntwin state:\n{}",
                    twin.snapshot_text().unwrap()
                );
            }
            if let Some(rest) = got.strip_prefix("granted job=") {
                let id: u64 = rest.split(' ').next().unwrap().parse().unwrap();
                live.push(id);
            } else if got == "ok" && cmd.starts_with("release ") {
                let id: u64 = cmd["release ".len()..].parse().unwrap();
                live.retain(|&j| j != id);
            } else if let Some(t) = got.strip_prefix("ok now=") {
                now = t.parse().unwrap();
            }
        }

        // === The in-doubt window, then SIGKILL ===
        in_doubt.clear();
        for _ in 0..rng.below(4) {
            let cmd = gen_cmd(&mut rng, now, &live);
            client.send(&cmd).unwrap();
            in_doubt.push(cmd);
        }
        if rng.below(2) == 0 {
            // Vary the kill point relative to the in-flight batch.
            std::thread::sleep(Duration::from_millis(rng.below(4)));
        }
        daemon.kill9();
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snap_file);
}
