//! # coalloc — resource co-allocation for large-scale distributed environments
//!
//! A from-scratch Rust reproduction of Castillo, Rouskas & Harfoush,
//! *"Resource Co-Allocation for Large-Scale Distributed Environments"*,
//! HPDC 2009: an online algorithm that co-allocates multiple resources
//! simultaneously, supports advance reservations, and answers temporal
//! range searches, built on slotted 2-dimensional trees over idle periods.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the data structure and online scheduler (the paper's
//!   contribution);
//! * [`sim`] — discrete-event replay and the paper's metrics;
//! * [`workloads`] — SWF trace parsing and CTC/KTH/HPC2N statistical twins;
//! * [`batch`] — FCFS / EASY / conservative backfilling baselines;
//! * [`shard`] — sharded parallel front-end making decisions bit-identical
//!   to the single scheduler (DESIGN.md §9);
//! * [`net`] — the TCP serving path: concurrent line-protocol server with
//!   admission control (DESIGN.md §10, `docs/PROTOCOL.md`);
//! * [`multisite`] — atomic cross-site co-allocation (hold/commit protocol);
//! * [`lambda`] — the PCE wavelength-scheduling application (Section 3.2);
//! * [`workflow`] — DAG co-allocation via chained advance reservations.
//!
//! ## Quickstart
//!
//! ```
//! use coalloc::prelude::*;
//!
//! // A 16-server system with 15-minute slots and a 2-day horizon.
//! let cfg = SchedulerConfig::builder()
//!     .tau(Dur::from_mins(15))
//!     .horizon(Dur::from_hours(48))
//!     .build();
//! let mut sched = CoAllocScheduler::new(16, cfg);
//!
//! // Co-allocate 4 servers for one hour, starting now.
//! let grant = sched
//!     .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 4))
//!     .expect("empty system accepts this");
//! assert_eq!(grant.servers.len(), 4);
//!
//! // Advance reservation: 8 servers, tomorrow 09:00–11:00.
//! let start = Time::from_hours(33);
//! let grant = sched
//!     .submit(&Request::advance(Time::ZERO, start, Dur::from_hours(2), 8))
//!     .expect("fits within the horizon");
//! assert_eq!(grant.start, start);
//!
//! // Range search: everything free in a window, without committing.
//! let free = sched.range_search(Time(600), Time(3000));
//! assert_eq!(free.len(), 12); // 16 minus the 4 busy during the first hour
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use coalloc_batch as batch;
pub use coalloc_core as core;
pub use coalloc_lambda as lambda;
pub use coalloc_multisite as multisite;
pub use coalloc_net as net;
pub use coalloc_shard as shard;
pub use coalloc_sim as sim;
pub use coalloc_workflow as workflow;
pub use coalloc_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use coalloc_batch::{run_batch, BatchPolicy};
    pub use coalloc_core::prelude::*;
    pub use coalloc_lambda::{ConnectionRequest, Network, NodeId, Pce, PceConfig, Wavelength};
    pub use coalloc_multisite::{
        Coordinator, CoordinatorConfig, MultiRequest, SiteHandle, SiteId,
    };
    pub use coalloc_net::{Client, NetConfig, Server, Session};
    pub use coalloc_shard::ShardedScheduler;
    pub use coalloc_sim::runner::{run_naive, run_online, run_with, Outcome, RunResult};
    pub use coalloc_workflow::{Dag, Mode, Stage, StageId, WorkflowPlan};
    pub use coalloc_workloads::{with_paper_reservations, WorkloadSpec, WorkloadStats};
}
