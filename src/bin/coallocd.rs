//! `coallocd` — a scriptable command-line front-end to the co-allocation
//! scheduler: one command per line on stdin, one reply per line on stdout.
//! This is the shape of the "resource manager \[that\] runs an algorithm to
//! determine the availability of the resources and informs the user"
//! from the paper's VCL description (Section 3.1).
//!
//! ```text
//! $ cargo run --bin coallocd
//! init 8 900 172800 900
//! submit 0 0 3600 4
//! query 0 7200
//! release 0
//! snapshot /tmp/state.txt
//! exit
//! ```
//!
//! Commands (times in seconds):
//!
//! | command | effect |
//! |---|---|
//! | `init N [tau horizon delta_t]` | create an N-server scheduler |
//! | `submit q s l n` | request `(q_r, s_r, l_r, n_r)` |
//! | `deadline q s l n D` | like submit, but must complete by `D` |
//! | `constrained q s l n MASK` | submit restricted to servers with tags |
//! | `attrs SERVER MASK` | tag a server |
//! | `query a b` | count + list resources free for all of `[a, b)` |
//! | `release JOB` | cancel a job |
//! | `advance T` | move the clock |
//! | `stats` | op counters and utilization |
//! | `metrics` | Prometheus-style text exposition of all obs counters |
//! | `snapshot PATH` / `load PATH` | persist / restore state |
//! | `help`, `exit` | |
//!
//! CLI flags: `--shards K` partitions the servers over `K` parallel shard
//! workers (`init` then builds a sharded scheduler making the same decisions
//! as the single one; `query`, `constrained`, `attrs`, `snapshot` and `load`
//! require the default `K = 1`). `--trace-out PATH` writes span/event traces
//! as JSONL to `PATH`; `--metrics-dump` prints the metrics exposition on
//! exit. The `COALLOC_OBS` environment variable (see the `obs` crate)
//! configures tracing when `--trace-out` is not given.

use coalloc::core::attrs::AttrSet;
use coalloc::prelude::*;
use std::io::{BufRead, Write};

/// Either back-end behind the command loop; both make identical decisions
/// (DESIGN.md §9), so which one serves `submit` is invisible to clients.
enum Sched {
    Plain(Box<CoAllocScheduler>),
    Sharded(Box<ShardedScheduler>),
}

impl Sched {
    fn submit(&mut self, req: &Request) -> Result<Grant, ScheduleError> {
        match self {
            Sched::Plain(s) => s.submit(req),
            Sched::Sharded(s) => s.submit(req),
        }
    }

    fn submit_with_deadline(
        &mut self,
        req: &Request,
        deadline: Time,
    ) -> Result<Grant, ScheduleError> {
        match self {
            Sched::Plain(s) => s.submit_with_deadline(req, deadline),
            Sched::Sharded(s) => s.submit_with_deadline(req, deadline),
        }
    }

    fn release(&mut self, job: JobId) -> Result<(), ScheduleError> {
        match self {
            Sched::Plain(s) => s.release(job),
            Sched::Sharded(s) => s.release(job),
        }
    }

    fn advance_to(&mut self, now: Time) {
        match self {
            Sched::Plain(s) => s.advance_to(now),
            Sched::Sharded(s) => s.advance_to(now),
        }
    }

    /// The single-scheduler back-end, for commands the sharded front-end
    /// does not serve.
    fn plain(&mut self) -> Result<&mut CoAllocScheduler, String> {
        match self {
            Sched::Plain(s) => Ok(s),
            Sched::Sharded(_) => {
                Err("command requires a single-shard scheduler (run without --shards)".into())
            }
        }
    }
}

struct Session {
    sched: Option<Sched>,
    shards: u32,
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: '{s}'"))
}

impl Session {
    fn sched(&mut self) -> Result<&mut Sched, String> {
        self.sched.as_mut().ok_or_else(|| "no scheduler; run 'init N' first".to_string())
    }

    fn grant_line(g: &Grant) -> String {
        let servers: Vec<String> = g.servers.iter().map(|s| s.0.to_string()).collect();
        format!(
            "granted job={} start={} end={} attempts={} wait={} servers={}",
            g.job.0,
            g.start.secs(),
            g.end.secs(),
            g.attempts,
            g.waiting.secs(),
            servers.join(",")
        )
    }

    /// Execute one command line; returns the reply (possibly multi-line).
    fn exec(&mut self, line: &str) -> Result<String, String> {
        let f: Vec<&str> = line.split_whitespace().collect();
        match f.as_slice() {
            [] | ["#", ..] => Ok(String::new()),
            ["help"] => Ok("commands: init submit deadline constrained attrs query \
                            release advance stats metrics snapshot load help exit"
                .into()),
            ["init", n, rest @ ..] => {
                let n: u32 = parse(n, "server count")?;
                let mut b = SchedulerConfig::builder();
                if let [tau, horizon, delta_t] = rest {
                    b = b
                        .tau(Dur(parse(tau, "tau")?))
                        .horizon(Dur(parse(horizon, "horizon")?))
                        .delta_t(Dur(parse(delta_t, "delta_t")?));
                } else if !rest.is_empty() {
                    return Err("usage: init N [tau horizon delta_t]".into());
                }
                if self.shards > 1 {
                    self.sched = Some(Sched::Sharded(Box::new(ShardedScheduler::new(
                        n,
                        self.shards,
                        b.build(),
                    ))));
                    Ok(format!("ok {n} servers over {} shards", self.shards))
                } else {
                    self.sched = Some(Sched::Plain(Box::new(CoAllocScheduler::new(n, b.build()))));
                    Ok(format!("ok {n} servers"))
                }
            }
            ["submit", q, s, l, n] => {
                let req = Request::advance(
                    Time(parse(q, "q_r")?),
                    Time(parse(s, "s_r")?),
                    Dur(parse(l, "l_r")?),
                    parse(n, "n_r")?,
                );
                match self.sched()?.submit(&req) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["deadline", q, s, l, n, d] => {
                let req = Request::advance(
                    Time(parse(q, "q_r")?),
                    Time(parse(s, "s_r")?),
                    Dur(parse(l, "l_r")?),
                    parse(n, "n_r")?,
                );
                let deadline = Time(parse(d, "deadline")?);
                match self.sched()?.submit_with_deadline(&req, deadline) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["constrained", q, s, l, n, mask] => {
                let req = Request::advance(
                    Time(parse(q, "q_r")?),
                    Time(parse(s, "s_r")?),
                    Dur(parse(l, "l_r")?),
                    parse(n, "n_r")?,
                );
                let required = AttrSet(parse(mask, "mask")?);
                match self.sched()?.plain()?.submit_constrained(&req, required) {
                    Ok(g) => Ok(Self::grant_line(&g)),
                    Err(e) => Ok(format!("rejected {e}")),
                }
            }
            ["attrs", server, mask] => {
                let srv = ServerId(parse(server, "server")?);
                let mask = AttrSet(parse(mask, "mask")?);
                let sched = self.sched()?.plain()?;
                if srv.0 >= sched.num_servers() {
                    return Err(format!("no such server {}", srv.0));
                }
                sched.set_server_attrs(srv, mask);
                Ok("ok".into())
            }
            ["query", a, b] => {
                let (a, b) = (Time(parse(a, "start")?), Time(parse(b, "end")?));
                let hits = self.sched()?.plain()?.range_search(a, b);
                let mut out = format!("free {}", hits.len());
                for h in hits {
                    out.push_str(&format!(
                        "\n  server={} idle=[{}, {}) slack={}",
                        h.period.server.0,
                        h.period.start.secs(),
                        if h.period.end.is_inf() {
                            "inf".to_string()
                        } else {
                            h.period.end.secs().to_string()
                        },
                        h.tail_slack.secs()
                    ));
                }
                Ok(out)
            }
            ["release", job] => {
                let job = JobId(parse(job, "job id")?);
                match self.sched()?.release(job) {
                    Ok(()) => Ok("ok".into()),
                    Err(e) => Ok(format!("error {e}")),
                }
            }
            ["advance", t] => {
                let t = Time(parse(t, "time")?);
                self.sched()?.advance_to(t);
                Ok(format!("ok now={}", t.secs()))
            }
            ["stats"] => {
                let (now, horizon_end, util, s) = match self.sched()? {
                    Sched::Plain(sched) => {
                        let now = sched.now();
                        (
                            now,
                            sched.horizon_end(),
                            sched.utilization(now.max(Time(1))),
                            *sched.stats(),
                        )
                    }
                    Sched::Sharded(sched) => {
                        let now = sched.now();
                        let horizon_end = sched.horizon_end();
                        let util = sched.utilization(now.max(Time(1)));
                        (now, horizon_end, util, sched.stats())
                    }
                };
                Ok(format!(
                    "now={} horizon_end={} util={:.4} ops={} searches={} attempts={}",
                    now.secs(),
                    horizon_end.secs(),
                    util,
                    s.total_ops(),
                    s.phase1_searches,
                    s.attempts
                ))
            }
            ["metrics"] => Ok(obs::metrics::exposition().trim_end().to_string()),
            ["snapshot", path] => {
                let text = self.sched()?.plain()?.snapshot();
                std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
                Ok(format!("ok wrote {path}"))
            }
            ["load", path] => {
                if self.shards > 1 {
                    return Err(
                        "load requires a single-shard scheduler (run without --shards)".into()
                    );
                }
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                let sched =
                    CoAllocScheduler::restore(&text).map_err(|e| format!("restore: {e}"))?;
                let n = sched.num_servers();
                self.sched = Some(Sched::Plain(Box::new(sched)));
                Ok(format!("ok {n} servers restored"))
            }
            _ => Err(format!("unknown command: '{line}' (try 'help')")),
        }
    }
}

fn main() {
    obs::init_from_env();
    let mut metrics_dump = false;
    let mut shards = 1u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shards" => {
                let k = args.next().unwrap_or_else(|| {
                    eprintln!("--shards needs a count");
                    std::process::exit(2);
                });
                shards = k.parse().unwrap_or_else(|_| {
                    eprintln!("bad shard count: '{k}'");
                    std::process::exit(2);
                });
                if shards == 0 {
                    eprintln!("--shards must be at least 1");
                    std::process::exit(2);
                }
            }
            "--trace-out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                });
                match obs::trace::JsonlSink::create(&path) {
                    Ok(sink) => {
                        obs::trace::set_sink(Some(std::sync::Arc::new(sink)));
                        obs::trace::set_enabled(true);
                        obs::trace::set_detail(true);
                        eprintln!("tracing to {path} (jsonl)");
                    }
                    Err(e) => {
                        eprintln!("cannot open trace file {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics-dump" => metrics_dump = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut session = Session { sched: None, shards };
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim() == "exit" {
            break;
        }
        match session.exec(&line) {
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => {
                let _ = writeln!(stdout, "{reply}");
            }
            Err(e) => {
                let _ = writeln!(stdout, "error: {e}");
            }
        }
        let _ = stdout.flush();
    }
    obs::trace::flush_sink();
    if metrics_dump {
        let _ = writeln!(stdout, "--- metrics ---");
        let _ = write!(stdout, "{}", obs::metrics::exposition());
        let _ = stdout.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sharded(cmds: &[&str], shards: u32) -> Vec<String> {
        let mut s = Session { sched: None, shards };
        cmds.iter()
            .map(|c| match s.exec(c) {
                Ok(r) => r,
                Err(e) => format!("error: {e}"),
            })
            .collect()
    }

    fn run(cmds: &[&str]) -> Vec<String> {
        run_sharded(cmds, 1)
    }

    #[test]
    fn happy_path_session() {
        let out = run(&[
            "init 4 10 200 10",
            "submit 0 0 50 2",
            "query 0 50",
            "release 0",
            "stats",
        ]);
        assert_eq!(out[0], "ok 4 servers");
        assert!(out[1].starts_with("granted job=0 start=0 end=50"));
        assert!(out[2].starts_with("free 2"));
        assert_eq!(out[3], "ok");
        assert!(out[4].contains("ops="));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&["submit 0 0 10 1", "init x", "init 2 10 100 10", "bogus"]);
        assert!(out[0].starts_with("error: no scheduler"));
        assert!(out[1].starts_with("error: bad server count"));
        assert_eq!(out[2], "ok 2 servers");
        assert!(out[3].starts_with("error: unknown command"));
    }

    #[test]
    fn rejection_is_a_reply_not_an_error() {
        let out = run(&["init 1 10 100 10", "submit 0 0 500 1", "submit 0 0 10 5"]);
        assert!(out[1].starts_with("rejected"));
        assert!(out[2].starts_with("rejected"));
    }

    #[test]
    fn constrained_and_attrs() {
        let out = run(&[
            "init 3 10 200 10",
            "attrs 2 5",
            "constrained 0 0 30 1 5",
            "constrained 0 0 30 2 5",
        ]);
        assert_eq!(out[1], "ok");
        assert!(out[2].contains("servers=2"), "{}", out[2]);
        assert!(out[3].starts_with("rejected"));
    }

    #[test]
    fn snapshot_load_roundtrip() {
        let path = std::env::temp_dir().join("coallocd-test-snap.txt");
        let p = path.to_str().unwrap();
        let out = run(&[
            "init 2 10 100 10",
            "submit 0 0 40 1",
            &format!("snapshot {p}"),
            "init 9",
            &format!("load {p}"),
            "query 0 40",
        ]);
        assert!(out[2].starts_with("ok wrote"));
        assert_eq!(out[4], "ok 2 servers restored");
        assert!(out[5].starts_with("free 1"), "{}", out[5]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let out = run(&["", "# a comment", "help"]);
        assert_eq!(out[0], "");
        assert_eq!(out[1], "");
        assert!(out[2].contains("commands:"));
    }

    #[test]
    fn metrics_command_shows_phase_counters() {
        // The advance reservation at t=100 splits two timelines into a
        // finite idle gap [0, 100) plus a trailing tail; the 4-server
        // request then has to search the finite slot tree (Phase 2), not
        // just the trailing index.
        let out = run(&[
            "init 4 10 400 10",
            "submit 0 100 50 2",
            "submit 0 0 50 4",
            "deadline 0 0 20 1 100",
            "query 0 50",
            "metrics",
        ]);
        let m = out.last().unwrap();
        let value_of = |name: &str| -> u64 {
            m.lines()
                .find(|l| l.split_whitespace().next() == Some(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("metric {name} missing in:\n{m}"))
        };
        assert!(value_of("sched_phase1_total") > 0, "phase-1 counter zero");
        assert!(value_of("sched_phase2_total") > 0, "phase-2 counter zero");
        assert!(value_of("sched_grants_total") > 0);
        assert!(value_of("range_searches_total") > 0);
        assert!(value_of("sched_attempts_count") > 0, "retry histogram empty");
    }

    #[test]
    fn sharded_session_matches_plain_decisions() {
        let cmds = [
            "init 8 10 400 10",
            "submit 0 0 50 4",
            "submit 0 100 60 8",
            "deadline 0 0 20 2 100",
            "submit 0 0 500 1",
            "release 0",
            "submit 0 0 50 6",
        ];
        let plain = run(&cmds);
        for k in [2u32, 4] {
            let sharded = run_sharded(&cmds, k);
            assert_eq!(sharded[0], format!("ok 8 servers over {k} shards"));
            // Every decision line matches the single scheduler exactly
            // (grant/reject, job id, start, end, attempts, servers).
            assert_eq!(&plain[1..], &sharded[1..], "k={k}");
        }
    }

    #[test]
    fn sharded_session_rejects_single_shard_commands() {
        let out = run_sharded(
            &["init 4 10 200 10", "query 0 50", "attrs 0 1", "snapshot /tmp/x"],
            2,
        );
        for line in &out[1..] {
            assert!(
                line.starts_with("error: command requires a single-shard"),
                "{line}"
            );
        }
    }

    #[test]
    fn deadline_command() {
        let out = run(&["init 1 10 200 10", "submit 0 0 30 1", "deadline 0 0 20 1 40"]);
        assert!(out[2].starts_with("rejected"), "{}", out[2]);
        let out = run(&["init 1 10 200 10", "deadline 0 0 20 1 40"]);
        assert!(out[1].starts_with("granted"));
    }
}
