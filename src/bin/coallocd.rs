//! `coallocd` — the resource-manager front-end to the co-allocation
//! scheduler: one command per line, one reply per line. This is the shape
//! of the "resource manager \[that\] runs an algorithm to determine the
//! availability of the resources and informs the user" from the paper's
//! VCL description (Section 3.1).
//!
//! Two modes share one interpreter ([`coalloc::net::Session`]), so their
//! reply streams are byte-identical:
//!
//! * **stdin mode** (default) — read commands from stdin, reply on stdout:
//!
//!   ```text
//!   $ cargo run --bin coallocd
//!   init 8 900 172800 900
//!   submit 0 0 3600 4
//!   query 0 7200
//!   release 0
//!   snapshot /tmp/state.txt
//!   exit
//!   ```
//!
//! * **serve mode** — a concurrent TCP front-end with admission control:
//!
//!   ```text
//!   $ cargo run --bin coallocd -- serve --addr 127.0.0.1:7077
//!   listening on 127.0.0.1:7077
//!   ```
//!
//! The command surface (`init`, `submit`, `deadline`, `constrained`,
//! `attrs`, `query`, `release`, `advance`, `stats`, `metrics`, `check`,
//! `snapshot`, `load`, `version`, `help`, `exit`) is specified normatively
//! in `docs/PROTOCOL.md`; `help` prints the live command list, generated
//! from the same table the parser is tested against.
//!
//! CLI flags (both modes): `--shards K` partitions the servers over `K`
//! parallel shard workers (`init` then builds a sharded scheduler making
//! the same decisions as the single one; `query`, `constrained`, `attrs`,
//! `snapshot` and `load` require the default `K = 1`). `--trace-out PATH`
//! writes span/event traces as JSONL to `PATH`; `--metrics-dump` prints the
//! metrics exposition on exit. The `COALLOC_OBS` environment variable (see
//! the `obs` crate) configures tracing when `--trace-out` is not given.
//!
//! Serve-mode flags: `--addr HOST:PORT` (default `127.0.0.1:7077`; port 0
//! picks a free port, printed on stdout), `--workers W` (I/O event-loop
//! threads, each multiplexing its share of every open connection over
//! `poll(2)`), `--max-conns N` (admission bound: connections past it get
//! the busy reply and a close), `--queue-depth Q`, `--max-line BYTES`,
//! `--read-timeout-ms MS`, `--write-timeout-ms MS`. Flag-by-flag tuning
//! guidance lives in `docs/OPERATIONS.md`. The server runs until
//! SIGINT/EOF kills the process; `coalloc-net`'s [`coalloc::net::Server`]
//! drains gracefully on shutdown.
//!
//! Observability (serve mode): `--admin-addr HOST:PORT` opens a second
//! HTTP listener serving `/metrics`, `/healthz`, `/readyz`, `/status` and
//! `/debug/slow` (non-normative, see README.md § Operating `coallocd`);
//! the resolved address is printed as a second stdout line, `admin on
//! HOST:PORT`. `--slow-threshold-ms MS` sets the end-to-end latency above
//! which a request's stage timeline is captured into the slow ring
//! (default 100; 0 disables latency capture), `--slow-capacity N` bounds
//! the ring (default 256).
//!
//! Durability (serve mode): `--wal-dir PATH` write-ahead-logs every
//! mutating command to `PATH` and fsyncs it *before* the reply is
//! released, so a `kill -9` loses no acknowledged grant; on restart the
//! server recovers the pre-crash state from the log and resumes with
//! byte-identical decisions (see DESIGN.md §13 and the restart semantics
//! in `docs/PROTOCOL.md`). Tuning: `--wal-flush-ms MS` bounds how long a
//! reply may wait for its group-commit fsync (default 0 = flush whenever
//! the command queue goes idle), `--wal-snapshot-every N` installs a
//! snapshot and truncates the log every `N` records (0 disables), and
//! `--wal-segment-bytes B` sets the segment roll-over size.

use coalloc::net::{NetConfig, Server, Session, WalOptions};
use std::io::{BufRead, Write};

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_or_die<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad {what}: '{v}'");
        std::process::exit(2);
    })
}

struct CommonFlags {
    shards: u32,
    metrics_dump: bool,
}

fn main() {
    obs::init_from_env();
    let mut common = CommonFlags {
        shards: 1,
        metrics_dump: false,
    };
    let mut serve: Option<NetConfig> = None;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        serve = Some(NetConfig {
            addr: "127.0.0.1:7077".to_string(),
            ..NetConfig::default()
        });
    }
    while let Some(a) = args.next() {
        match (a.as_str(), &mut serve) {
            ("--shards", _) => {
                let k = flag_value(&mut args, "--shards");
                common.shards = parse_or_die(&k, "shard count");
                if common.shards == 0 {
                    eprintln!("--shards must be at least 1");
                    std::process::exit(2);
                }
            }
            ("--trace-out", _) => {
                let path = flag_value(&mut args, "--trace-out");
                match obs::trace::JsonlSink::create(&path) {
                    Ok(sink) => {
                        obs::trace::set_sink(Some(std::sync::Arc::new(sink)));
                        obs::trace::set_enabled(true);
                        obs::trace::set_detail(true);
                        eprintln!("tracing to {path} (jsonl)");
                    }
                    Err(e) => {
                        eprintln!("cannot open trace file {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            ("--metrics-dump", _) => common.metrics_dump = true,
            ("--addr", Some(cfg)) => cfg.addr = flag_value(&mut args, "--addr"),
            ("--workers", Some(cfg)) => {
                cfg.workers = parse_or_die(&flag_value(&mut args, "--workers"), "worker count");
            }
            ("--queue-depth", Some(cfg)) => {
                cfg.queue_depth =
                    parse_or_die(&flag_value(&mut args, "--queue-depth"), "queue depth");
            }
            ("--max-conns", Some(cfg)) => {
                cfg.max_conns =
                    parse_or_die(&flag_value(&mut args, "--max-conns"), "connection bound");
            }
            ("--accept-backlog", Some(cfg)) => {
                // Legacy (pre-event-loop) flag: accepted, no longer used.
                cfg.accept_backlog =
                    parse_or_die(&flag_value(&mut args, "--accept-backlog"), "accept backlog");
            }
            ("--max-line", Some(cfg)) => {
                cfg.max_line = parse_or_die(&flag_value(&mut args, "--max-line"), "max line");
            }
            ("--read-timeout-ms", Some(cfg)) => {
                cfg.read_timeout = std::time::Duration::from_millis(parse_or_die(
                    &flag_value(&mut args, "--read-timeout-ms"),
                    "read timeout",
                ));
            }
            ("--write-timeout-ms", Some(cfg)) => {
                cfg.write_timeout = std::time::Duration::from_millis(parse_or_die(
                    &flag_value(&mut args, "--write-timeout-ms"),
                    "write timeout",
                ));
            }
            ("--admin-addr", Some(cfg)) => {
                cfg.admin_addr = Some(flag_value(&mut args, "--admin-addr"));
            }
            ("--slow-threshold-ms", Some(cfg)) => {
                cfg.slow_threshold = std::time::Duration::from_millis(parse_or_die(
                    &flag_value(&mut args, "--slow-threshold-ms"),
                    "slow threshold",
                ));
            }
            ("--slow-capacity", Some(cfg)) => {
                cfg.slow_capacity =
                    parse_or_die(&flag_value(&mut args, "--slow-capacity"), "slow capacity");
            }
            ("--wal-dir", Some(cfg)) => {
                cfg.wal = Some(WalOptions::new(flag_value(&mut args, "--wal-dir")));
            }
            ("--wal-flush-ms", Some(cfg)) => {
                let ms: u64 =
                    parse_or_die(&flag_value(&mut args, "--wal-flush-ms"), "wal flush interval");
                match &mut cfg.wal {
                    Some(w) => w.flush_interval = std::time::Duration::from_millis(ms),
                    None => {
                        eprintln!("--wal-flush-ms requires --wal-dir first");
                        std::process::exit(2);
                    }
                }
            }
            ("--wal-snapshot-every", Some(cfg)) => {
                let n: u64 = parse_or_die(
                    &flag_value(&mut args, "--wal-snapshot-every"),
                    "wal snapshot period",
                );
                match &mut cfg.wal {
                    Some(w) => w.snapshot_every = n,
                    None => {
                        eprintln!("--wal-snapshot-every requires --wal-dir first");
                        std::process::exit(2);
                    }
                }
            }
            ("--wal-segment-bytes", Some(cfg)) => {
                let n: u64 = parse_or_die(
                    &flag_value(&mut args, "--wal-segment-bytes"),
                    "wal segment size",
                );
                match &mut cfg.wal {
                    Some(w) => w.segment_bytes = n.max(1),
                    None => {
                        eprintln!("--wal-segment-bytes requires --wal-dir first");
                        std::process::exit(2);
                    }
                }
            }
            (other, _) => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(mut cfg) = serve {
        cfg.shards = common.shards;
        let server = Server::bind(cfg).unwrap_or_else(|e| {
            eprintln!("cannot bind: {e}");
            std::process::exit(1);
        });
        // Printed on stdout so scripts (and the e2e tests) can discover the
        // resolved port when binding port 0.
        println!("listening on {}", server.local_addr());
        if let Some(admin) = server.admin_addr() {
            println!("admin on {admin}");
        }
        let _ = std::io::stdout().flush();
        // Serve until our stdin closes (or forever when detached): the
        // parent killing the process or closing the pipe is the shutdown
        // signal, after which the server drains gracefully.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            if line.is_err() {
                break;
            }
        }
        server.shutdown();
    } else {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout().lock();
        let mut session = Session::new(common.shards);
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if Session::is_exit(&line) {
                break;
            }
            match session.exec(&line) {
                Ok(reply) if reply.is_empty() => {}
                Ok(reply) => {
                    let _ = writeln!(stdout, "{reply}");
                }
                Err(e) => {
                    let _ = writeln!(stdout, "error: {e}");
                }
            }
            let _ = stdout.flush();
        }
    }
    obs::trace::flush_sink();
    if common.metrics_dump {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, "--- metrics ---");
        let _ = write!(stdout, "{}", obs::metrics::exposition());
        let _ = stdout.flush();
    }
}
