//! Lambda scheduling for grid applications (Section 3.2): a PCE co-allocates
//! link wavelengths along end-to-end paths of the NSFNET topology, with and
//! without wavelength conversion.
//!
//! ```text
//! cargo run --example lambda_grid
//! ```

use coalloc::lambda::{ConnectionRequest, Network, NodeId, Pce, PceConfig, Wavelength};
use coalloc::prelude::{Dur, SchedulerConfig, Time};

fn main() {
    let net = Network::nsfnet(4); // 14 nodes, 21 links, 4 wavelengths each
    println!(
        "NSFNET: {} nodes, {} links, {} wavelengths -> {} schedulable resources",
        net.num_nodes(),
        net.num_links(),
        net.wavelengths(),
        net.num_resources()
    );
    let sched_cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(30))
        .horizon(Dur::from_hours(24))
        .delta_t(Dur::from_mins(30))
        .build();
    let mut pce = Pce::new(
        net,
        sched_cfg,
        PceConfig {
            k_paths: 3,
            wavelength_conversion: false,
            delta_t: Dur::from_mins(30),
            r_max: 24,
        },
    );

    // A burst of data-transfer requests between collaborating sites.
    let demands = [
        (0u32, 13u32, 0, 4), // src, dst, start hour, duration hours
        (1, 12, 0, 2),
        (2, 10, 0, 6),
        (3, 8, 1, 3),
        (5, 7, 1, 2),
        (0, 13, 1, 4),
        (4, 11, 2, 5),
        (6, 9, 2, 2),
        (0, 13, 2, 4), // third big transfer on the busiest pair
        (2, 12, 3, 3),
    ];
    println!("\n== establishing lightpaths (wavelength continuity) ==");
    let mut established = Vec::new();
    for (i, &(s, d, h, dur)) in demands.iter().enumerate() {
        let req = ConnectionRequest {
            src: NodeId(s),
            dst: NodeId(d),
            earliest_start: Time::from_hours(h),
            duration: Dur::from_hours(dur),
            wavelengths: (Wavelength(0), Wavelength(3)),
        };
        match pce.connect(&req) {
            Ok(lp) => {
                println!(
                    "  #{i} {s}->{d}: {} hops on lambda {} at t+{:.1}h (attempts {})",
                    lp.path.hops(),
                    lp.wavelengths[0].0,
                    lp.start.secs() as f64 / 3600.0,
                    lp.attempts
                );
                established.push(lp);
            }
            Err(e) => println!("  #{i} {s}->{d}: blocked ({e})"),
        }
    }

    // Tear one down and show the wavelength is reusable.
    let lp = established.swap_remove(0);
    pce.tear_down(&lp).expect("lightpath exists");
    println!("\n== tear-down ==\n  released {} link-wavelength windows", lp.path.hops());

    // The same burst with wavelength conversion enabled: fewer shifts.
    let net2 = Network::nsfnet(4);
    let mut pce_conv = Pce::new(
        net2,
        sched_cfg,
        PceConfig {
            k_paths: 3,
            wavelength_conversion: true,
            delta_t: Dur::from_mins(30),
            r_max: 24,
        },
    );
    println!("\n== same demands with wavelength conversion ==");
    let mut delayed_nc = 0;
    let mut delayed_cv = 0;
    for &(s, d, h, dur) in &demands {
        let req = ConnectionRequest {
            src: NodeId(s),
            dst: NodeId(d),
            earliest_start: Time::from_hours(h),
            duration: Dur::from_hours(dur),
            wavelengths: (Wavelength(0), Wavelength(3)),
        };
        if let Ok(lp) = pce_conv.connect(&req) {
            if lp.start > req.earliest_start {
                delayed_cv += 1;
            }
            if !lp.is_continuous() {
                println!(
                    "  {s}->{d}: converted mid-path (lambdas {:?})",
                    lp.wavelengths.iter().map(|w| w.0).collect::<Vec<_>>()
                );
            }
        }
    }
    for lp in &established {
        if lp.start > Time::from_hours(0) {
            delayed_nc += 1;
        }
    }
    println!(
        "\ndelayed connections: continuity {delayed_nc} vs conversion {delayed_cv} \
         (conversion never does worse)"
    );
}
