//! Quickstart: the core co-allocation API in one small scenario.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use coalloc::prelude::*;

fn main() {
    // A 8-server system; 15-minute slots, 2-day horizon, 15-minute retry
    // increment — the paper's evaluation settings, scaled down.
    let cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(48))
        .delta_t(Dur::from_mins(15))
        .build();
    let mut sched = CoAllocScheduler::new(8, cfg);
    println!(
        "system: {} servers, horizon until {}",
        sched.num_servers(),
        sched.horizon_end()
    );

    // 1. On-demand co-allocation: 4 servers for 2 hours, right now.
    let grant = sched
        .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(2), 4))
        .expect("empty system");
    println!(
        "job {:?}: {} servers at {} for 2h (attempts: {}, wait: {})",
        grant.job,
        grant.servers.len(),
        grant.start,
        grant.attempts,
        grant.waiting
    );

    // 2. A second large job cannot fit concurrently and is shifted by the
    //    Delta_t retry loop — the paper's Section 4.2 behaviour.
    let grant2 = sched
        .submit(&Request::on_demand(Time::ZERO, Dur::from_hours(1), 6))
        .expect("fits after the first job");
    println!(
        "job {:?}: delayed to {} after {} attempts (wait: {})",
        grant2.job, grant2.start, grant2.attempts, grant2.waiting
    );

    // 3. Advance reservation: book 5 servers for tomorrow 09:00-10:00.
    let tomorrow_9am = Time::from_hours(24 + 9);
    let grant3 = sched
        .submit(&Request::advance(
            Time::ZERO,
            tomorrow_9am,
            Dur::from_hours(1),
            5,
        ))
        .expect("the future is free");
    println!("job {:?}: advance reservation at {}", grant3.job, grant3.start);

    // 4. Range search: what is free tomorrow 08:00-12:00?
    let free = sched.range_search(Time::from_hours(32), Time::from_hours(36));
    println!(
        "free for the whole 08:00-12:00 window tomorrow: {} resources",
        free.len()
    );

    // 5. Query-then-commit: take the two with the most slack.
    let mut picks = free.clone();
    picks.sort_by_key(|a| std::cmp::Reverse(a.tail_slack));
    let selection: Vec<PeriodId> = picks.iter().take(2).map(|a| a.period.id).collect();
    match sched.commit_selection(&selection, Time::from_hours(32), Time::from_hours(33)) {
        Ok(g) => println!("committed user selection as {:?} on {:?}", g.job, g.servers),
        Err(e) => println!("selection was taken in the meantime: {e}"),
    }

    // 6. Cancel the advance reservation; capacity returns.
    sched.release(grant3.job).expect("job exists");
    let free_again = sched.range_search(tomorrow_9am, tomorrow_9am + Dur::from_hours(1));
    println!("after cancellation, {} resources free at 09:00", free_again.len());

    // 7. Operation accounting (the paper's Figure 7b metric).
    let s = sched.stats();
    println!(
        "data-structure ops so far: {} (search {}, update {})",
        s.total_ops(),
        s.search_ops(),
        s.update_visits
    );
}
