//! The Virtual Computing Laboratory scenario (Section 3.1): a mixed
//! workload of **advance reservations** (virtual desktops for scheduled
//! classes) and **on-demand best-effort jobs** (HPC experiments), sharing
//! one resource pool.
//!
//! ```text
//! cargo run --example vcl_classroom
//! ```

use coalloc::prelude::*;

const POOL: u32 = 64; // blade servers in the VCL pool

fn main() {
    let cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(24 * 7)) // a week of class schedules
        .delta_t(Dur::from_mins(15))
        .build();
    let mut vcl = CoAllocScheduler::new(POOL, cfg);

    // --- 1. The registrar books classes for the week (advance) ----------
    // Each class needs one desktop per seat, at fixed hours.
    let classes = [
        ("CSC116 Mon 09:00", 24 + 9, 2, 30u32),
        ("CSC216 Mon 14:00", 24 + 14, 2, 25),
        ("CSC316 Tue 09:00", 48 + 9, 3, 40),
        ("ECE209 Tue 13:00", 48 + 13, 2, 35),
        ("CSC116 Wed 09:00", 72 + 9, 2, 30),
    ];
    println!("== class reservations ==");
    let mut class_jobs = Vec::new();
    for (name, start_h, dur_h, seats) in classes {
        let req = Request::advance(
            Time::ZERO,
            Time::from_hours(start_h),
            Dur::from_hours(dur_h),
            seats,
        );
        match vcl.submit(&req) {
            Ok(g) => {
                println!("  {name}: {seats} desktops reserved at t+{start_h}h");
                class_jobs.push((name, g));
            }
            Err(e) => println!("  {name}: REJECTED ({e})"),
        }
    }

    // --- 2. Researchers submit on-demand HPC jobs ------------------------
    // They run whenever capacity allows, flowing around the class blocks.
    println!("== HPC jobs (on-demand, best effort) ==");
    let hpc = [
        ("bio-seq alignment", 0, 30, 32u32),
        ("CFD sweep", 1, 26, 48),
        ("ML hyperparameter grid", 2, 40, 20),
    ];
    for (name, submit_h, dur_h, nodes) in hpc {
        vcl.advance_to(Time::from_hours(submit_h));
        let req = Request::on_demand(Time::from_hours(submit_h), Dur::from_hours(dur_h), nodes);
        match vcl.submit(&req) {
            Ok(g) => println!(
                "  {name}: {nodes} nodes at t+{}h (waited {:.1}h, {} attempts)",
                g.start.secs() / 3600,
                g.waiting.hours(),
                g.attempts
            ),
            Err(e) => println!("  {name}: could not be placed ({e})"),
        }
    }

    // --- 3. A student asks: "when can I get 16 desktops for 2h today?" ---
    println!("== interactive availability query ==");
    let mut t = Time::from_hours(8);
    loop {
        let free = vcl.range_count(t, t + Dur::from_hours(2));
        if free >= 16 {
            println!(
                "  first 2h window with >=16 desktops: t+{}h ({} free)",
                t.secs() / 3600,
                free
            );
            break;
        }
        t += Dur::from_hours(1);
        if t > Time::from_hours(48) {
            println!("  nothing available in the next two days");
            break;
        }
    }

    // --- 4. A class is cancelled; its desktops return to the pool --------
    let (name, grant) = class_jobs.pop().expect("classes were booked");
    vcl.release(grant.job).expect("reservation exists");
    println!("== cancellation ==\n  {name} cancelled; capacity restored");

    // --- 5. Weekly report -------------------------------------------------
    let util = vcl.utilization(Time::from_hours(24 * 7));
    println!("== report ==");
    println!("  committed utilization over the week: {:.1}%", util * 100.0);
    println!("  scheduler ops: {}", vcl.stats().total_ops());
}
