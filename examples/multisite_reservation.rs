//! Atomic cross-site co-allocation: a coordinator reserves servers on three
//! independent scheduler domains for one common time window, all-or-nothing,
//! with contention resolved by shifting the window (the paper's `Delta_t`
//! loop lifted to the multi-site level).
//!
//! ```text
//! cargo run --example multisite_reservation
//! ```

use coalloc::multisite::{
    Coordinator, CoordinatorConfig, MultiRequest, SiteHandle, SiteId, SiteReply, SiteRequest,
};
use coalloc::prelude::{Dur, SchedulerConfig, Time};
use std::time::Duration;

fn main() {
    // Three sites with different capacities (e.g. three campus clusters).
    let sched_cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(15))
        .horizon(Dur::from_hours(48))
        .delta_t(Dur::from_mins(15))
        .build();
    let capacities = [16u32, 8, 4];
    let sites: Vec<SiteHandle> = capacities
        .iter()
        .enumerate()
        .map(|(i, &n)| SiteHandle::spawn(SiteId(i as u32), n, sched_cfg))
        .collect();
    println!("sites: {capacities:?} servers");

    let mut coord = Coordinator::new(
        &sites,
        CoordinatorConfig {
            delta_t: Dur::from_mins(15),
            r_max: 32,
            rpc_timeout: Duration::from_secs(2),
            hold_ttl: Duration::from_secs(10),
            ..CoordinatorConfig::default()
        },
    );

    // A cross-site workflow: 8 + 4 + 3 servers for 2 hours, simultaneously.
    let req = MultiRequest {
        parts: [(SiteId(0), 8), (SiteId(1), 4), (SiteId(2), 3)]
            .into_iter()
            .collect(),
        earliest_start: Time::ZERO,
        duration: Dur::from_hours(2),
    };
    let g1 = coord.co_allocate(&req).expect("plenty of capacity");
    println!(
        "workflow 1: txn {:?} at {} on {} sites (attempts {})",
        g1.txn,
        g1.start,
        g1.parts.len(),
        g1.attempts
    );

    // A second identical workflow: site 2 (4 servers) only has 2 left, so
    // the common window must shift past workflow 1.
    let g2 = coord.co_allocate(&req).expect("fits after the first");
    println!(
        "workflow 2: shifted to {} (attempts {}, aborted prefixes: {})",
        g2.start,
        g2.attempts,
        coord.stats().aborts
    );

    // An impossible request (site 2 has only 4 servers) fails cleanly —
    // no partial allocation survives anywhere.
    let impossible = MultiRequest {
        parts: [(SiteId(0), 2), (SiteId(2), 5)].into_iter().collect(),
        earliest_start: Time::ZERO,
        duration: Dur::from_hours(1),
    };
    match coord.co_allocate(&impossible) {
        Ok(_) => unreachable!(),
        Err(e) => println!("impossible request: {e}"),
    }
    // Verify site 0 kept nothing from the failed attempts.
    if let SiteReply::QueryResult { available, .. } = sites[0].call(SiteRequest::Query {
        start: Time::ZERO,
        duration: Dur::from_hours(1),
    }) {
        println!("site 0 free for the probed window: {available} (8 committed earlier)");
    }

    for s in sites {
        let stats = s.shutdown();
        println!(
            "site stats: granted {} / denied {} / commits {} / aborts {} / expired {}",
            stats.holds_granted, stats.holds_denied, stats.commits, stats.aborts, stats.expired
        );
    }
}
