//! Deadline-driven workflow co-allocation — the paper's severe-weather
//! motivation (LEAD [31]): "an emerging class of deadline-driven scientific
//! applications such as severe weather modeling require simultaneous access
//! to multiple resources and predictable completion times."
//!
//! A storm-forecast DAG (ingest → assimilate → ensemble members → merge →
//! visualize) must complete before the storm window; the whole pipeline is
//! planned atomically as chained advance reservations with an end-to-end
//! deadline, then defended against competing load.
//!
//! ```text
//! cargo run --example weather_workflow
//! ```

use coalloc::core::attrs::AttrSet;
use coalloc::prelude::*;
use coalloc::workflow::{schedule_reserved, WorkflowError};

const GPU: AttrSet = AttrSet(1);

fn forecast_dag(members: usize) -> Dag {
    let mut dag = Dag::new();
    let ingest = dag.add_stage(Stage::new("radar-ingest", Dur::from_mins(20), 4));
    let assim = dag.add_stage(Stage::new("data-assimilation", Dur::from_mins(40), 16));
    dag.add_dep(ingest, assim).unwrap();
    let merge = dag.add_stage(Stage::new("ensemble-merge", Dur::from_mins(15), 8));
    for m in 0..members {
        let member = dag.add_stage(
            Stage::new(format!("wrf-member-{m}"), Dur::from_mins(90), 12).requiring(GPU),
        );
        dag.add_dep(assim, member).unwrap();
        dag.add_dep(member, merge).unwrap();
    }
    let viz = dag.add_stage(Stage::new("visualization", Dur::from_mins(10), 2));
    dag.add_dep(merge, viz).unwrap();
    dag
}

fn main() {
    // A 96-node cluster; half the nodes carry GPUs.
    let cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(5))
        .horizon(Dur::from_hours(24))
        .delta_t(Dur::from_mins(5))
        .build();
    let mut sched = CoAllocScheduler::new(96, cfg);
    for n in 0..48 {
        sched.set_server_attrs(ServerId(n), GPU);
    }

    let dag = forecast_dag(4);
    println!(
        "forecast DAG: {} stages, critical path {:.1} h",
        dag.len(),
        dag.critical_path().unwrap().hours()
    );

    // The storm window: results are useless after t+4h.
    let deadline = Time::from_hours(4);
    match schedule_reserved(&mut sched, &dag, Time::ZERO, Some(deadline)) {
        Ok(plan) => {
            println!("pipeline reserved; completes at t+{:.2} h (deadline {:.1} h):",
                plan.makespan_end.secs() as f64 / 3600.0,
                deadline.secs() as f64 / 3600.0);
            for (i, g) in plan.grants.iter().enumerate() {
                println!(
                    "  {:<18} {:>3} nodes  [{:>5.2}h, {:>5.2}h)",
                    dag.stage(StageId(i)).name,
                    g.servers.len(),
                    g.start.secs() as f64 / 3600.0,
                    g.end.secs() as f64 / 3600.0,
                );
            }
            // Competing load arriving minutes later cannot displace the
            // forecast — that is the point of advance reservations.
            let mut displaced = false;
            for k in 0..20 {
                let r = Request::on_demand(Time(60 * k), Dur::from_hours(2), 24);
                let _ = sched.submit(&r);
            }
            for g in &plan.grants {
                if sched.job(g.job).is_none() {
                    displaced = true;
                }
            }
            println!(
                "after a 20-job competing burst: pipeline {}",
                if displaced { "DISPLACED (bug!)" } else { "intact" }
            );
        }
        Err(WorkflowError::DeadlineMiss { stage }) => {
            println!("cannot meet the storm deadline (stage #{}) — nothing was reserved", stage.0);
        }
        Err(e) => println!("planning failed: {e}"),
    }

    // Now an impossible deadline: the pipeline refuses atomically.
    let mut sched2 = CoAllocScheduler::new(96, cfg);
    for n in 0..48 {
        sched2.set_server_attrs(ServerId(n), GPU);
    }
    let err = schedule_reserved(&mut sched2, &forecast_dag(4), Time::ZERO, Some(Time::from_hours(1)))
        .unwrap_err();
    println!("\n1-hour deadline: {err}");
    println!(
        "nothing left behind: {} of 96 nodes free for the next 24h",
        sched2
            .range_search(Time::ZERO, Time::from_hours(24))
            .len()
    );
}
