//! MapReduce-style gang allocation (Section 1): "the MapReduce middleware
//! allocates multiple compute nodes to run multiple instances of a set of
//! functions defined by the user" — i.e. each job wave is a co-allocation.
//! This example schedules map waves and reduce waves with a dependency
//! (reduce starts when its maps end), using advance reservations to chain
//! the stages, and compares against a batch baseline.
//!
//! ```text
//! cargo run --example mapreduce_gang
//! ```

use coalloc::prelude::*;

const CLUSTER: u32 = 64;

struct MrJob {
    name: &'static str,
    submit: Time,
    map_tasks: u32,
    map_dur: Dur,
    reduce_tasks: u32,
    reduce_dur: Dur,
}

fn main() {
    let cfg = SchedulerConfig::builder()
        .tau(Dur::from_mins(5))
        .horizon(Dur::from_hours(24))
        .delta_t(Dur::from_mins(5))
        .build();
    let mut sched = CoAllocScheduler::new(CLUSTER, cfg);

    let jobs = [
        MrJob {
            name: "wordcount",
            submit: Time::ZERO,
            map_tasks: 40,
            map_dur: Dur::from_mins(30),
            reduce_tasks: 10,
            reduce_dur: Dur::from_mins(20),
        },
        MrJob {
            name: "log-etl",
            submit: Time::from_hours(0),
            map_tasks: 32,
            map_dur: Dur::from_mins(45),
            reduce_tasks: 8,
            reduce_dur: Dur::from_mins(30),
        },
        MrJob {
            name: "pagerank-iter",
            submit: Time::from_hours(1),
            map_tasks: 64,
            map_dur: Dur::from_mins(20),
            reduce_tasks: 16,
            reduce_dur: Dur::from_mins(15),
        },
    ];

    println!("== gang-scheduling MapReduce waves on a {CLUSTER}-node cluster ==");
    let mut completions = Vec::new();
    for job in &jobs {
        sched.advance_to(job.submit);
        // Map wave: all map slots simultaneously (gang).
        let maps = sched
            .submit(&Request::on_demand(job.submit, job.map_dur, job.map_tasks))
            .expect("maps schedulable");
        // Reduce wave: an advance reservation chained to the map end — the
        // shuffle barrier. Thanks to the look-ahead schedule this reserves
        // *now*, guaranteeing the pipeline.
        let reduces = sched
            .submit(&Request::advance(
                job.submit,
                maps.end,
                job.reduce_dur,
                job.reduce_tasks,
            ))
            .expect("reduces schedulable");
        println!(
            "  {}: maps {}x{}min at t+{:.1}h (wait {:.1}h), reduces {}x{}min at t+{:.1}h",
            job.name,
            job.map_tasks,
            job.map_dur.secs() / 60,
            maps.start.secs() as f64 / 3600.0,
            maps.waiting.hours(),
            job.reduce_tasks,
            job.reduce_dur.secs() / 60,
            reduces.start.secs() as f64 / 3600.0,
        );
        completions.push((job.name, reduces.end));
    }
    println!("== job completion times ==");
    for (name, end) in &completions {
        println!("  {name}: t+{:.2}h", end.secs() as f64 / 3600.0);
    }

    // Contrast with a FCFS batch baseline treating each wave as a queued
    // job with no look-ahead: the reduce wave cannot be co-reserved with
    // its map wave, so pipelines interleave unpredictably.
    println!("== batch (FCFS) baseline on the same waves ==");
    let mut reqs = Vec::new();
    for job in &jobs {
        reqs.push(Request::on_demand(job.submit, job.map_dur, job.map_tasks));
        // Batch cannot express "after my maps": it just queues the reduce.
        reqs.push(Request::on_demand(job.submit, job.reduce_dur, job.reduce_tasks));
    }
    reqs.sort_by_key(|r| r.submit);
    let batch = run_batch(CLUSTER, BatchPolicy::Fcfs, &reqs, "fcfs");
    let batch_makespan = batch.makespan.secs() as f64 / 3600.0;
    let online_makespan = completions
        .iter()
        .map(|(_, e)| e.secs())
        .max()
        .unwrap() as f64
        / 3600.0;
    println!(
        "  makespan: online co-allocation {online_makespan:.2}h vs FCFS batch {batch_makespan:.2}h"
    );
    println!(
        "  NOTE: the batch makespan is not even a valid execution — FCFS cannot\n\
         \x20 express the shuffle barrier, so reduce waves may start before their\n\
         \x20 maps finish. Only the co-allocator yields a correct pipeline with\n\
         \x20 guaranteed start times (the paper's workflow-application argument)."
    );
}
